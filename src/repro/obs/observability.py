"""The observability bundle attached to a :class:`~repro.db.Database`.

One object owns the metric registry and the trace log, plus pre-bound
emission helpers for the migration-lifecycle points.  The emission
sites are exactly the eight fault seams of :mod:`repro.core.faults`
(``FAULT_POINTS``) — the hot paths already branch there, so attaching
observability adds **one** guarded call per seam
(``obs is not None`` → ``obs.emit(point, ...)``), which bumps the
point's counter *and* appends a trace event in a single dispatch, not
two separate guards for metrics and tracing.

Zero-cost-when-detached contract (same as fault injection): every
owner holds ``obs = None`` by default and guards with a plain
``is not None``; ``benchmarks/bench_obs_overhead.py`` holds the
disabled cost to <2% and the enabled-metrics cost to <5%.
"""

from __future__ import annotations

import time
from typing import Any

from ..sql import ast_nodes as _ast
from .registry import DEFAULT_LATENCY_BUCKETS, MetricRegistry
from .trace import TraceLog

# One counter per migration-lifecycle point; keys mirror
# repro.core.faults.FAULT_POINTS so the seams double as metric sites.
POINT_COUNTERS: dict[str, tuple[str, str]] = {
    "migrate.before_claim": (
        "bullfrog_claim_rounds_total",
        "claim rounds entered by the per-transaction migration loop",
    ),
    "migrate.after_produce": (
        "bullfrog_produce_batches_total",
        "migration produce batches (output rows materialized, pre-commit)",
    ),
    "migrate.before_mark": (
        "bullfrog_mark_rounds_total",
        "tracker mark-migrated rounds (post-commit)",
    ),
    "migrate.after_commit": (
        "bullfrog_migrate_commits_total",
        "committed migration transactions",
    ),
    "background.pass": (
        "bullfrog_background_passes_total",
        "background migrator per-unit passes",
    ),
    "txn.commit": ("repro_txn_commits_total", "transaction commits"),
    "txn.abort": ("repro_txn_aborts_total", "transaction aborts"),
    "wal.flush": ("repro_wal_batches_total", "WAL redo batches appended"),
    "net.accept": (
        "repro_net_accept_rounds_total",
        "bullfrogd accept-loop rounds (one per inbound connection, "
        "pre-admission)",
    ),
    "net.read": (
        "repro_net_frames_read_total",
        "protocol frames read from clients by bullfrogd",
    ),
    "net.write": (
        "repro_net_frames_written_total",
        "protocol frames written to clients by bullfrogd",
    ),
}


def _noop(amount: float = 1) -> None:
    pass


class Observability:
    """Registry + trace log + pre-bound lifecycle instruments.

    ``metrics=False`` / ``tracing=False`` keep the object attachable
    (the guards still pass) while the corresponding emissions early-out;
    the overhead benchmark uses this to price the seams themselves.
    """

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        trace: TraceLog | None = None,
        metrics: bool = True,
        tracing: bool = True,
        trace_capacity: int = 65536,
        sample_statements: int = 16,
    ) -> None:
        if sample_statements < 1 or sample_statements & (sample_statements - 1):
            raise ValueError("sample_statements must be a power of two")
        self.registry = registry if registry is not None else MetricRegistry()
        self.trace = trace if trace is not None else TraceLog(trace_capacity)
        self.metrics_enabled = metrics
        self.tracing_enabled = tracing
        # Statement *counts* are exact; statement *latency* is observed
        # for a deterministic 1-in-N sample (the first statement and
        # every Nth after it).  Two clock reads plus a histogram update
        # per statement is the single largest instrumentation cost on
        # the no-op migration hot loop, and a 1-in-16 sample keeps the
        # latency distribution while pricing 15 of 16 statements at one
        # counter bump.  Tracing forces N=1 (every span must exist).
        self.sample_statements = 1 if tracing else sample_statements
        # Hot seams check this one attribute after their `is not None`
        # guard: an attached-but-fully-disabled bundle then costs a
        # branch per seam instead of a full emit dispatch.
        self.active = bool(metrics or tracing)
        # Pre-bound *cells* (not families): emission is a dict lookup +
        # one locked add — no registry traversal, no family delegation.
        self._point_counters: dict[str, Any] = {}
        if metrics:
            for point, (name, help_text) in POINT_COUNTERS.items():
                self._point_counters[point] = self.registry.counter(
                    name, help_text
                ).cell()
            self.statement_latency = self.registry.histogram(
                "repro_statement_seconds",
                "end-to-end statement latency (includes lazy-migration work "
                "done by the interceptor)",
                labelnames=("stmt",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self.migrate_wip_latency = self.registry.histogram(
                "bullfrog_migrate_wip_seconds",
                "duration of one migration transaction (claim batch -> "
                "produce -> commit -> mark)",
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self.wal_batch_records = self.registry.histogram(
                "repro_wal_batch_records",
                "redo records per WAL append batch",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
            )
            self.rows_written = self.registry.counter(
                "repro_rows_written_total",
                "rows written by DML (post-constraint-check)",
                labelnames=("op",),
            )
            self._rows_cells = {
                op: self.rows_written.labels(op=op)
                for op in ("insert", "update", "delete")
            }
            self.statements_total = self.registry.counter(
                "repro_statements_total",
                "client statements executed (exact, never sampled)",
                labelnames=("stmt",),
            )
            self._stmt_cells = {
                kind: self.statement_latency.labels(stmt=kind)
                for kind in ("select", "insert", "update", "delete", "ddl")
            }
            self._stmt_observes = {
                kind: cell.observe for kind, cell in self._stmt_cells.items()
            }
            self._stmt_incs = {
                kind: self.statements_total.labels(stmt=kind).inc1
                for kind in ("select", "insert", "update", "delete", "ddl")
            }
            # Keyed by AST class so the executor seam dispatches with
            # one ``type(stmt)`` + one dict probe; anything not DML
            # (DDL included) falls back to the ``ddl`` series.
            self._stmt_incs_by_type = {
                _ast.Select: self._stmt_incs["select"],
                _ast.Insert: self._stmt_incs["insert"],
                _ast.Update: self._stmt_incs["update"],
                _ast.Delete: self._stmt_incs["delete"],
            }
            self.lock_wait_latency = self.registry.histogram(
                "repro_lock_wait_seconds",
                "time spent blocked on lock acquisition (contended path "
                "only; uncontended acquires are never observed)",
                labelnames=("resource",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._lock_wait_cells = {
                cls: self.lock_wait_latency.labels(resource=cls).observe
                for cls in ("table", "tuple", "other")
            }
            self.deadlocks_total = self.registry.counter(
                "repro_deadlock_aborts_total",
                "lock acquisitions aborted by deadlock handling "
                "(DETECT victim or WAIT_DIE death)",
            ).cell()
            self.lock_timeouts_total = self.registry.counter(
                "repro_lock_timeouts_total",
                "lock acquisitions aborted by the lock-wait timeout",
            ).cell()
            self._wip_cell = self.migrate_wip_latency.cell()
            self._wal_cells: tuple[Any, Any] | None = (
                self._point_counters["wal.flush"],
                self.wal_batch_records.cell(),
            )
            # Bound-method fast paths for the two per-statement-rate
            # counters: on the no-op hot loop even one spare call layer
            # per seam is measurable, so the seams call the cell's
            # atomic unit-increment directly when tracing is off.
            self.inc_claim_round = self._point_counters["migrate.before_claim"].inc1
            self.inc_txn_commit = self._point_counters["txn.commit"].inc1
            if not tracing:
                # Metrics-only statement hooks, specialized at attach
                # time: no tracing branch, no method-dispatch glue —
                # the executor calls straight into the counter and
                # histogram cells.  The sampling decision rides the
                # counter's own return value (``inc1`` hands back the
                # pre-increment count), so an unsampled statement costs
                # one dict probe plus one atomic bump, and
                # ``statement_begin`` answers 0.0 to tell the caller to
                # skip the clock read and the end-of-statement hook.
                incs_by_type_get = self._stmt_incs_by_type.get
                ddl_inc = self._stmt_incs["ddl"]
                observes_get = self._stmt_observes.get
                fallback = self.statement_latency
                mask = self.sample_statements - 1

                def _statement_begin(
                    stmt_type: type, _pc=time.perf_counter
                ) -> float:
                    if incs_by_type_get(stmt_type, ddl_inc)() & mask:
                        return 0.0
                    return _pc()

                def _statement_done(
                    kind: str, start_s: float, _pc=time.perf_counter
                ) -> None:
                    observe = observes_get(kind)
                    if observe is not None:
                        observe(_pc() - start_s)
                    else:
                        fallback.labels(stmt=kind).observe(_pc() - start_s)

                self.statement_begin = _statement_begin
                self.statement_done = _statement_done
        else:
            self.statement_latency = None
            self.statements_total = None
            self.migrate_wip_latency = None
            self.wal_batch_records = None
            self.rows_written = None
            self.lock_wait_latency = None
            self._lock_wait_cells = {}
            self.deadlocks_total = None
            self.lock_timeouts_total = None
            self._rows_cells = {}
            self._stmt_cells = {}
            self._stmt_observes = {}
            self._stmt_incs = {}
            self._stmt_incs_by_type = {}
            self._wip_cell = None
            self._wal_cells = None
            self.inc_claim_round = _noop
            self.inc_txn_commit = _noop

    # ------------------------------------------------------------------
    # Lifecycle-point emission (the fault seams)
    # ------------------------------------------------------------------
    def emit(self, point: str, **args: Any) -> None:
        """One guarded call per seam: counter bump + instant trace event."""
        counter = self._point_counters.get(point)
        if counter is not None:
            counter.inc()
        if self.tracing_enabled:
            self.trace.instant(point, cat="lifecycle", args=args or None)

    def count(self, point: str) -> None:
        """Metrics-only fast path for a lifecycle point: ``emit(point)``
        minus the kwargs collection (which costs more than the counter
        bump itself).  Hot seams take it when tracing is off."""
        cell = self._point_counters.get(point)
        if cell is not None:
            cell.inc()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span_start(self) -> float:
        """Start-of-span timestamp; pair with :meth:`span_end`.  Cheaper
        than a context manager on hot paths."""
        return self.trace.now_us() if self.tracing_enabled else time.perf_counter() * 1e6

    def span_end(
        self, name: str, start_us: float, cat: str = "", **args: Any
    ) -> float:
        """Record the span (if tracing) and return its duration in
        seconds (for feeding a histogram)."""
        if self.tracing_enabled:
            end = self.trace.now_us()
            self.trace.complete(name, start_us, cat=cat, args=args or None, end_us=end)
            return (end - start_us) / 1e6
        return time.perf_counter() - start_us / 1e6

    def observe_wip(self, start_us: float, **args: Any) -> None:
        """End of one migration transaction: the ``migrate.wip`` span
        (if tracing) and its duration histogram, one guarded call."""
        if self.tracing_enabled:
            end = self.trace.now_us()
            self.trace.complete(
                "migrate.wip", start_us, cat="migration",
                args=args or None, end_us=end,
            )
            seconds = (end - start_us) / 1e6
        else:
            seconds = time.perf_counter() - start_us * 1e-6
        cell = self._wip_cell
        if cell is not None:
            cell.observe(seconds)

    def wal_flush(self, txn_id: int, records: int) -> None:
        """The ``wal.flush`` seam: batch counter + records-per-batch
        histogram + trace instant behind the WAL's one guard."""
        cells = self._wal_cells
        if cells is not None:
            cells[0].inc()
            cells[1].observe(records)
        if self.tracing_enabled:
            self.trace.instant(
                "wal.flush",
                cat="lifecycle",
                args={"txn_id": txn_id, "records": records},
            )

    # ------------------------------------------------------------------
    # Per-statement executor instrumentation
    # ------------------------------------------------------------------
    def statement_begin(self, stmt_type: type) -> float:
        """Start-of-statement hook: exact statement count, then the
        start timestamp — or ``0.0`` when this statement's latency is
        not sampled, telling the caller to skip :meth:`statement_done`.
        This general path (tracing on, or metrics off) always samples:
        every statement needs its trace span."""
        incs = self._stmt_incs_by_type
        if incs:
            incs.get(stmt_type, self._stmt_incs["ddl"])()
        return time.perf_counter()

    def statement_done(self, kind: str, start_s: float) -> None:
        """End-of-statement hook: latency histogram + ``stmt.<kind>``
        trace span.  Takes a raw ``time.perf_counter()`` start so the
        caller pays one clock read and no unit conversion."""
        seconds = time.perf_counter() - start_s
        observe = self._stmt_observes.get(kind)
        if observe is not None:
            observe(seconds)
        elif self.statement_latency is not None:
            self.statement_latency.labels(stmt=kind).observe(seconds)
        if self.tracing_enabled:
            end_us = self.trace.now_us()
            self.trace.complete(
                f"stmt.{kind}", end_us - seconds * 1e6, cat="exec", end_us=end_us
            )

    # ------------------------------------------------------------------
    # Lock-wait profiling (called by LockManager on the contended path)
    # ------------------------------------------------------------------
    def observe_lock_wait(self, cls: str, seconds: float) -> None:
        observe = self._lock_wait_cells.get(cls)
        if observe is not None:
            observe(seconds)
        if self.tracing_enabled:
            end_us = self.trace.now_us()
            self.trace.complete(
                "lock.wait", end_us - seconds * 1e6, cat="txn",
                args={"resource": cls}, end_us=end_us,
            )

    def count_deadlock(self) -> None:
        cell = self.deadlocks_total
        if cell is not None:
            cell.inc()

    def count_lock_timeout(self) -> None:
        cell = self.lock_timeouts_total
        if cell is not None:
            cell.inc()

    def add_rows(self, op: str, count: int) -> None:
        """Row-count accounting from the executor write path; pre-bound
        label cells so the cost is one dict lookup + one locked add."""
        cell = self._rows_cells.get(op)
        if cell is not None and count:
            cell.inc(count)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot()


__all__ = ["Observability", "POINT_COUNTERS"]
