"""Expression compilation and evaluation.

Expressions are compiled once per plan into Python closures over
``(row, params)`` where ``row`` is a flat value tuple and ``params`` the
positional statement parameters.  Compilation resolves column references
against a :class:`RowLayout` so per-row evaluation does no name lookups
— this matters for TPC-C throughput in the benchmark harness.

SQL three-valued logic: comparisons and boolean operators propagate
NULL (represented as ``None``); WHERE treats NULL as not-satisfied.
"""

from __future__ import annotations

import datetime
import operator
import re
from decimal import Decimal
from typing import Any, Callable, Sequence

from ..errors import ExecutionError, TypeError_, UnknownObjectError
from ..sql import ast_nodes as ast

Row = tuple[Any, ...]
CompiledExpr = Callable[[Row, Sequence[Any]], Any]


class RowLayout:
    """Maps column names to positions in a row tuple.

    Each column is addressable by its qualified key (``binding.column``)
    and, when unambiguous, by its bare name.  Ambiguous bare names are
    recorded and raise only if actually referenced.
    """

    def __init__(self) -> None:
        self._positions: dict[str, int] = {}
        self._ambiguous: set[str] = set()
        self.columns: list[tuple[str | None, str]] = []  # (binding, name)

    @staticmethod
    def for_table(binding: str, column_names: Sequence[str]) -> "RowLayout":
        layout = RowLayout()
        for name in column_names:
            layout.add(binding, name)
        return layout

    def add(self, binding: str | None, name: str) -> int:
        """Append a column; returns its position."""
        position = len(self.columns)
        self.columns.append((binding, name))
        if binding is not None:
            qualified = f"{binding}.{name}"
            self._positions[qualified] = position
        if name in self._positions or name in self._ambiguous:
            self._ambiguous.add(name)
            self._positions.pop(name, None)
        else:
            self._positions[name] = position
        return position

    def extend(self, other: "RowLayout") -> "RowLayout":
        """New layout = self's columns followed by other's."""
        merged = RowLayout()
        for binding, name in self.columns:
            merged.add(binding, name)
        for binding, name in other.columns:
            merged.add(binding, name)
        return merged

    def __len__(self) -> int:
        return len(self.columns)

    def position(self, ref: ast.ColumnRef) -> int:
        key = ref.key()
        position = self._positions.get(key)
        if position is not None:
            return position
        if ref.table is None and ref.name in self._ambiguous:
            raise ExecutionError(f"column reference {ref.name!r} is ambiguous")
        raise UnknownObjectError(f"column {key!r} does not exist")

    def try_position(self, ref: ast.ColumnRef) -> int | None:
        try:
            return self.position(ref)
        except (UnknownObjectError, ExecutionError):
            return None

    def has(self, ref: ast.ColumnRef) -> bool:
        return self.try_position(ref) is not None

    def bindings(self) -> set[str]:
        return {binding for binding, _name in self.columns if binding is not None}


# ----------------------------------------------------------------------
# Value helpers (3-valued logic + numeric coexistence)
# ----------------------------------------------------------------------

def _numeric_pair(left: Any, right: Any) -> tuple[Any, Any]:
    """Make int/float/Decimal mutually comparable/arithmetic-compatible."""
    if isinstance(left, Decimal) and isinstance(right, float):
        return left, Decimal(str(right))
    if isinstance(left, float) and isinstance(right, Decimal):
        return Decimal(str(left)), right
    return left, right


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, Decimal)) and not isinstance(value, bool)


def compare_values(left: Any, right: Any) -> int | None:
    """SQL comparison: returns -1/0/1, or None if either side is NULL."""
    if left is None or right is None:
        return None
    if _is_number(left) and _is_number(right):
        left, right = _numeric_pair(left, right)
    elif isinstance(left, str) and isinstance(right, str):
        # CHAR comparison ignores trailing pad spaces (SQL semantics).
        left = left.rstrip(" ")
        right = right.rstrip(" ")
    elif isinstance(left, datetime.datetime) and isinstance(right, datetime.date) and not isinstance(right, datetime.datetime):
        right = datetime.datetime.combine(right, datetime.time.min)
    elif isinstance(right, datetime.datetime) and isinstance(left, datetime.date) and not isinstance(left, datetime.datetime):
        left = datetime.datetime.combine(left, datetime.time.min)
    try:
        if left == right:
            return 0
        return -1 if left < right else 1
    except TypeError as exc:
        raise TypeError_(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        ) from exc


def sql_and(left: Any, right: Any) -> Any:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Any, right: Any) -> Any:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Any) -> Any:
    if value is None:
        return None
    return not value


def _arith(op_name: str, op_fn) -> Callable[[Any, Any], Any]:
    def apply(left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        if not (_is_number(left) and _is_number(right)):
            raise TypeError_(
                f"operator {op_name} requires numeric operands, got "
                f"{type(left).__name__} and {type(right).__name__}"
            )
        left, right = _numeric_pair(left, right)
        try:
            return op_fn(left, right)
        except ZeroDivisionError as exc:
            raise ExecutionError("division by zero") from exc

    return apply


def _sql_div(left: Any, right: Any) -> Any:
    if isinstance(left, int) and isinstance(right, int):
        # SQL integer division truncates toward zero.
        if right == 0:
            raise ZeroDivisionError
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return left / right


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": _arith("+", operator.add),
    "-": _arith("-", operator.sub),
    "*": _arith("*", operator.mul),
    "/": _arith("/", _sql_div),
    "%": _arith("%", operator.mod),
}

_CMP_MAKERS: dict[str, Callable[[int], bool]] = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


def like_match(value: Any, pattern: Any) -> Any:
    """SQL LIKE with ``%`` and ``_`` wildcards; NULL-propagating."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise TypeError_("LIKE requires string operands")
    regex = _like_regex(pattern)
    return bool(regex.match(value))


_LIKE_CACHE: dict[str, re.Pattern[str]] = {}


def _like_regex(pattern: str) -> re.Pattern[str]:
    cached = _LIKE_CACHE.get(pattern)
    if cached is not None:
        return cached
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    compiled = re.compile("".join(parts) + r"\Z", re.DOTALL)
    if len(_LIKE_CACHE) < 1024:
        _LIKE_CACHE[pattern] = compiled
    return compiled


def extract_field(field: str, value: Any) -> Any:
    """EXTRACT(field FROM date/timestamp)."""
    if value is None:
        return None
    if not isinstance(value, (datetime.date, datetime.datetime)):
        raise TypeError_(f"EXTRACT requires a date/timestamp, got {type(value).__name__}")
    if field == "YEAR":
        return value.year
    if field == "MONTH":
        return value.month
    if field == "DAY":
        return value.day
    if isinstance(value, datetime.datetime):
        if field == "HOUR":
            return value.hour
        if field == "MINUTE":
            return value.minute
        if field == "SECOND":
            return value.second
    if field == "DOW":
        # PostgreSQL: Sunday=0 .. Saturday=6
        return (value.weekday() + 1) % 7
    raise ExecutionError(f"unsupported EXTRACT field {field}")


# ----------------------------------------------------------------------
# Scalar function registry
# ----------------------------------------------------------------------

def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _null_passthrough(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapped(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapped


def _fn_substr(value: str, start: int, length: int | None = None) -> str:
    # SQL SUBSTR is 1-based.
    begin = max(start - 1, 0)
    if length is None:
        return value[begin:]
    return value[begin : begin + length]


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "ABS": _null_passthrough(abs),
    "LOWER": _null_passthrough(str.lower),
    "UPPER": _null_passthrough(str.upper),
    "LENGTH": _null_passthrough(len),
    "TRIM": _null_passthrough(str.strip),
    "RTRIM": _null_passthrough(str.rstrip),
    "LTRIM": _null_passthrough(str.lstrip),
    "SUBSTR": _null_passthrough(_fn_substr),
    "SUBSTRING": _null_passthrough(_fn_substr),
    "ROUND": _null_passthrough(round),
    "FLOOR": _null_passthrough(lambda v: int(v) if v >= 0 or v == int(v) else int(v) - 1),
    "CEIL": _null_passthrough(lambda v: int(v) if v <= 0 or v == int(v) else int(v) + 1),
    "MOD": _null_passthrough(lambda a, b: a % b),
    "COALESCE": _fn_coalesce,
    "NULLIF": lambda a, b: None if compare_values(a, b) == 0 else a,
    "DATE_PART": lambda field, value: extract_field(str(field).upper(), value),
}


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

def compile_expr(expr: ast.Expr, layout: RowLayout) -> CompiledExpr:
    """Compile ``expr`` into a closure ``fn(row, params) -> value``."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row, params: value
    if isinstance(expr, ast.ColumnRef):
        position = layout.position(expr)
        return lambda row, params: row[position]
    if isinstance(expr, ast.Param):
        index = expr.index
        def eval_param(row: Row, params: Sequence[Any]) -> Any:
            if index >= len(params):
                raise ExecutionError(
                    f"statement requires at least {index + 1} parameter(s), "
                    f"got {len(params)}"
                )
            return params[index]
        return eval_param
    if isinstance(expr, ast.Star):
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, layout)
    if isinstance(expr, ast.UnaryOp):
        inner = compile_expr(expr.operand, layout)
        if expr.op == "NOT":
            return lambda row, params: sql_not(inner(row, params))
        if expr.op == "-":
            def negate(row: Row, params: Sequence[Any]) -> Any:
                value = inner(row, params)
                if value is None:
                    return None
                if not _is_number(value):
                    raise TypeError_("unary minus requires a numeric operand")
                return -value
            return negate
        raise ExecutionError(f"unsupported unary operator {expr.op}")
    if isinstance(expr, ast.IsNull):
        inner = compile_expr(expr.operand, layout)
        if expr.negated:
            return lambda row, params: inner(row, params) is not None
        return lambda row, params: inner(row, params) is None
    if isinstance(expr, ast.Between):
        operand = compile_expr(expr.operand, layout)
        low = compile_expr(expr.low, layout)
        high = compile_expr(expr.high, layout)
        negated = expr.negated
        def eval_between(row: Row, params: Sequence[Any]) -> Any:
            value = operand(row, params)
            c_low = compare_values(value, low(row, params))
            c_high = compare_values(value, high(row, params))
            if c_low is None or c_high is None:
                return None
            result = c_low >= 0 and c_high <= 0
            return not result if negated else result
        return eval_between
    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, layout)
        items = [compile_expr(item, layout) for item in expr.items]
        negated = expr.negated
        def eval_in_clear(row: Row, params: Sequence[Any]) -> Any:
            value = operand(row, params)
            if value is None:
                return None
            saw_null = False
            for item in items:
                cmp = compare_values(value, item(row, params))
                if cmp is None:
                    saw_null = True
                elif cmp == 0:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False
        return eval_in_clear
    if isinstance(expr, ast.FunctionCall):
        return _compile_function(expr, layout)
    if isinstance(expr, ast.Cast):
        inner = compile_expr(expr.operand, layout)
        target = expr.target
        return lambda row, params: target.coerce(inner(row, params))
    if isinstance(expr, ast.Extract):
        inner = compile_expr(expr.operand, layout)
        field = expr.field
        return lambda row, params: extract_field(field, inner(row, params))
    if isinstance(expr, ast.CaseExpr):
        return _compile_case(expr, layout)
    raise ExecutionError(f"cannot compile expression {type(expr).__name__}")


def _compile_binary(expr: ast.BinaryOp, layout: RowLayout) -> CompiledExpr:
    left = compile_expr(expr.left, layout)
    right = compile_expr(expr.right, layout)
    op = expr.op
    if op == "AND":
        return lambda row, params: sql_and(left(row, params), right(row, params))
    if op == "OR":
        return lambda row, params: sql_or(left(row, params), right(row, params))
    if op in _CMP_MAKERS:
        predicate = _CMP_MAKERS[op]
        def eval_cmp(row: Row, params: Sequence[Any]) -> Any:
            cmp = compare_values(left(row, params), right(row, params))
            if cmp is None:
                return None
            return predicate(cmp)
        return eval_cmp
    if op in _ARITH_OPS:
        apply = _ARITH_OPS[op]
        return lambda row, params: apply(left(row, params), right(row, params))
    if op == "||":
        def eval_concat(row: Row, params: Sequence[Any]) -> Any:
            lhs = left(row, params)
            rhs = right(row, params)
            if lhs is None or rhs is None:
                return None
            return str(lhs) + str(rhs)
        return eval_concat
    if op == "LIKE":
        return lambda row, params: like_match(left(row, params), right(row, params))
    raise ExecutionError(f"unsupported operator {op}")


def _compile_function(expr: ast.FunctionCall, layout: RowLayout) -> CompiledExpr:
    name = expr.name.upper()
    if ast.is_aggregate_call(expr):
        raise ExecutionError(
            f"aggregate {name} is not allowed here (only in a select list "
            "or HAVING of a grouped query)"
        )
    fn = SCALAR_FUNCTIONS.get(name)
    if fn is None:
        raise ExecutionError(f"unknown function {name}")
    args = [compile_expr(arg, layout) for arg in expr.args]
    return lambda row, params: fn(*(arg(row, params) for arg in args))


def _compile_case(expr: ast.CaseExpr, layout: RowLayout) -> CompiledExpr:
    operand = compile_expr(expr.operand, layout) if expr.operand is not None else None
    whens = [
        (compile_expr(when, layout), compile_expr(then, layout))
        for when, then in expr.whens
    ]
    default = compile_expr(expr.default, layout) if expr.default is not None else None

    def eval_case(row: Row, params: Sequence[Any]) -> Any:
        if operand is not None:
            subject = operand(row, params)
            for when, then in whens:
                if compare_values(subject, when(row, params)) == 0:
                    return then(row, params)
        else:
            for when, then in whens:
                if when(row, params) is True:
                    return then(row, params)
        return default(row, params) if default is not None else None

    return eval_case


def evaluate_constant(expr: ast.Expr, params: Sequence[Any] = ()) -> Any:
    """Evaluate an expression with no column references (DEFAULTs, LIMIT)."""
    compiled = compile_expr(expr, RowLayout())
    return compiled((), params)


def predicate_satisfied(value: Any) -> bool:
    """WHERE semantics: TRUE passes, FALSE and NULL do not."""
    return value is True
