"""Blocking client library for ``bullfrogd``.

:func:`connect` returns a :class:`Connection` whose ``execute()`` /
``transaction()`` mirror the embedded :class:`~repro.db.Session` API
and return the same :class:`~repro.db.Result` objects, so code written
against the embedded engine (the TPC-C terminals, ``format_result`` in
the shell) runs over a socket unchanged.

Two hot-path features come from the PARSE/BIND/EXECUTE protocol
extension:

* **Prepared statements** — ``conn.prepare(sql)`` parses once
  server-side and returns a :class:`PreparedStatement`; executing it
  skips the SQL tokenizer and parser entirely.  Passing
  ``auto_prepare=N`` to :func:`connect` turns on an implicit
  per-connection statement cache: ``execute()`` transparently prepares
  the first N distinct SQL strings it sees and runs them prepared from
  then on — parameterized workloads (the TPC-C terminals use ``?``
  placeholders throughout) get the fast path without changing a line.
* **Pipelining** — ``conn.pipeline()`` queues many requests, writes
  them as one batch, and only then reads the replies, collapsing N
  round trips into one.  The server answers strictly in request order;
  engine errors come back embedded per-operation (the connection
  survives them), while a transport error aborts the whole drain.

Server errors arrive as structured frames carrying the
:mod:`repro.errors` class name; the connection re-raises the matching
class, so ``except TransactionAborted: retry`` works across the wire.
Transaction state is **server-authoritative**: every COMPLETE/ERROR
frame carries the session's ``in_transaction`` flag and the current
schema epoch, which is how a client observes BullFrog's logical schema
switch without any extra round trip.

:class:`ConnectionPool` adds thread-safe pooling with a liveness check
on acquire and reconnect with decorrelated-jitter backoff when the
check fails — the building block for "clients reconnecting across the
migration" runs.

**Distributed tracing** (``connect(trace=True)``): the client asks for
it with a ``trace`` HELLO option; a server that understands answers
with ``CAP_TRACE`` in the WELCOME capabilities trailer.  From then on
every ``execute()`` / prepared execution / transaction control mints a
root :class:`~repro.obs.tracectx.TraceContext` and rides its ids on
the frame's trace trailer, so the server-loop and engine-internal
spans it causes share the client's ``trace_id``.  Pass a
:class:`~repro.obs.trace.TraceLog` as ``trace_log`` to also record the
**client-side** root span (``client.query`` et al.) — export it with
:func:`repro.obs.merge_chrome` next to the server's log and Perfetto
shows the request crossing the socket.  ``conn.last_trace`` holds the
most recent root context (how a caller finds its request tree in the
server's log).  Tracing against an old server degrades cleanly: no
capability, no trailer, client-side spans only.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import Any, Callable, Iterator, Sequence

from ..db import Result
from ..errors import (
    ConnectionClosedError,
    NetworkError,
    ProtocolError,
    ReproError,
)
from ..obs.tracectx import TraceContext
from . import protocol
from .addr import parse_hostport


def decorrelated_jitter(
    base: float, cap: float, rng: random.Random | None = None
) -> Iterator[float]:
    """Yield AWS-style decorrelated-jitter delays: each draw is
    ``min(cap, uniform(base, 3 * previous))``, starting from ``base``.

    Unlike deterministic exponential backoff, concurrent clients that
    fail at the same instant (a server restart kills a whole pool) draw
    *different* delays from the very first retry, so they do not stampede
    the listener in lockstep when it comes back.
    """
    uniform = (rng or random).uniform
    delay = base
    while True:
        delay = min(cap, uniform(base, delay * 3))
        yield delay


def connect(
    host: str = "127.0.0.1",
    port: int = 5433,
    connect_timeout: float = 10.0,
    client_name: str = "repro-client",
    auto_prepare: int = 0,
    isolation: str | None = None,
    trace: bool = False,
    trace_log: Any = None,
) -> "Connection":
    # ``connect("host:5444")`` works: a combined address in ``host``
    # wins over the ``port`` argument (shared parsing with the shell's
    # --connect and the router's shard list).
    host, port = parse_hostport(host, default_port=port)
    return Connection(host, port, connect_timeout=connect_timeout,
                      client_name=client_name, auto_prepare=auto_prepare,
                      isolation=isolation, trace=trace, trace_log=trace_log)


class Connection:
    """One socket to a ``bullfrogd``.  Not thread-safe (like a Session);
    use one per worker or a :class:`ConnectionPool`."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        client_name: str = "repro-client",
        auto_prepare: int = 0,
        isolation: str | None = None,
        trace: bool = False,
        trace_log: Any = None,
    ) -> None:
        self.host = host
        self.port = port
        # Session default isolation, carried as a HELLO option
        # (``isolation="snapshot"`` for SI reads during migration).
        self.isolation = isolation
        self._closed = False
        self._in_transaction = False
        self._auto_prepare = auto_prepare
        self._stmt_cache: dict[str, PreparedStatement] = {}
        self._next_ps = 0
        # Distributed tracing: passing a TraceLog implies tracing.
        self._trace = trace or trace_log is not None
        self._trace_log = trace_log
        self.trace_capable = False
        self.last_trace: TraceContext | None = None
        # When set, request contexts are minted as *children* of this
        # context instead of fresh roots — how the router fans one
        # client span out into per-shard server spans.
        self.trace_parent: TraceContext | None = None
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ConnectionClosedError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._stream = protocol.FrameStream(self._sock)
        self.bytes_out = 0
        self.bytes_in = 0
        try:
            options: dict[str, str] = {}
            if isolation is not None:
                options["isolation"] = isolation
            if self._trace:
                options["trace"] = "1"
            self._send(protocol.encode_hello(
                client_name, options=options or None
            ))
            ftype, payload = self._recv()
            if ftype == protocol.ERROR:
                # Admission control: the server refused us with a
                # structured frame before the welcome.
                frame = protocol.decode_error(payload)
                raise protocol.reconstruct_error(
                    frame["error_class"], frame["sqlstate"], frame["message"]
                )
            if ftype != protocol.WELCOME:
                raise ProtocolError(
                    f"expected WELCOME, got frame type 0x{ftype:02x}"
                )
            welcome = protocol.decode_welcome(payload)
        except BaseException:
            self._sock.close()
            self._closed = True
            raise
        if welcome["version"] != protocol.PROTOCOL_VERSION:
            self._sock.close()
            self._closed = True
            raise ProtocolError(
                f"server speaks protocol v{welcome['version']}, "
                f"client v{protocol.PROTOCOL_VERSION}"
            )
        self.server_version: str = welcome["server_version"]
        self.schema_epoch: int = welcome["schema_epoch"]
        self.session_id: int = welcome["session_id"]
        # An old server sends no capabilities trailer (decoded as 0):
        # tracing degrades to client-side spans with no trailer sent.
        self.trace_capable = bool(
            welcome.get("capabilities", 0) & protocol.CAP_TRACE
        )
        self._sock.settimeout(None)

    # ------------------------------------------------------------------
    # Low-level I/O
    # ------------------------------------------------------------------
    def _send(self, frame: bytes) -> None:
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        try:
            self._stream.send_frame(frame)
        except OSError as exc:
            self._mark_broken()
            raise ConnectionClosedError(f"send failed: {exc}") from exc
        self.bytes_out += len(frame)

    def _recv(self) -> tuple[int, bytes]:
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        try:
            frame = self._stream.recv_frame()
        except ProtocolError:
            self._mark_broken()
            raise
        except socket.timeout as exc:
            self._mark_broken()
            raise ConnectionClosedError("read timed out") from exc
        except OSError as exc:
            self._mark_broken()
            raise ConnectionClosedError(f"recv failed: {exc}") from exc
        if frame is None:
            self._mark_broken()
            raise ConnectionClosedError("server closed the connection")
        self.bytes_in += protocol.HEADER_SIZE + len(frame[1])
        return frame

    def _mark_broken(self) -> None:
        self._closed = True
        # A dead socket leaves transaction state unknowable; the server
        # rolls the transaction back on its side.
        self._in_transaction = False
        self._stmt_cache.clear()
        try:
            self._sock.close()
        except OSError:
            pass

    def _raise_error(self, payload: bytes) -> None:
        raise self._decode_error(payload)

    def _decode_error(self, payload: bytes) -> ReproError:
        frame = protocol.decode_error(payload)
        self._in_transaction = frame["in_transaction"]
        exc = protocol.reconstruct_error(
            frame["error_class"], frame["sqlstate"], frame["message"]
        )
        if isinstance(exc, NetworkError) and not isinstance(exc, ProtocolError):
            # Server-side kills (shutdown, busy, timeouts) terminate the
            # connection right after this frame.
            self._mark_broken()
        return exc

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _trace_begin(self) -> tuple[TraceContext | None, float]:
        """Mint the root context for one request (or ``(None, 0)`` when
        tracing is off).  The returned timestamp is the client-side
        span's start in the local TraceLog's clock."""
        if not self._trace:
            return None, 0.0
        parent = self.trace_parent
        ctx = parent.child() if parent is not None else TraceContext()
        self.last_trace = ctx
        log = self._trace_log
        return ctx, (log.now_us() if log is not None else 0.0)

    def _trace_end(
        self, span_name: str, ctx: TraceContext | None, start_us: float,
        **extra: Any,
    ) -> None:
        log = self._trace_log
        if ctx is None or log is None:
            return
        args: dict[str, Any] = {
            "trace": ctx.trace_id, "span": ctx.span_id,
        }
        args.update(extra)
        log.complete(span_name, start_us, cat="client", args=args)

    def _wire_trace(
        self, ctx: TraceContext | None
    ) -> tuple[int, int] | None:
        """The trailer to ride on the frame — only when the server
        advertised CAP_TRACE (an old server would reject the bytes)."""
        if ctx is None or not self.trace_capable:
            return None
        return (ctx.trace_id, ctx.span_id)

    # ------------------------------------------------------------------
    # Session-mirroring API
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_transaction(self) -> bool:
        return self._in_transaction

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Result:
        if self._auto_prepare > 0:
            ps = self._stmt_cache.get(sql)
            if ps is None and len(self._stmt_cache) < self._auto_prepare:
                # Implicit statement cache (the asyncpg idiom): the
                # first sighting of a SQL string pays one PARSE round
                # trip; every later execution skips the parser.
                ps = self.prepare(sql)
                self._stmt_cache[sql] = ps
            if ps is not None:
                return self.execute_prepared(ps, params)
        ctx, start_us = self._trace_begin()
        self._send(protocol.encode_query(
            sql, params, trace=self._wire_trace(ctx)
        ))
        try:
            return self._read_query_response()
        finally:
            self._trace_end("client.query", ctx, start_us, sql=sql)

    def _read_query_response(self) -> Result:
        columns: list[str] = []
        rows: list[tuple] = []
        tag = ""
        while True:
            ftype, payload = self._recv()
            if ftype == protocol.ROW_HEADER:
                header = protocol.decode_row_header(payload)
                tag = header["tag"]
                columns = header["columns"]
            elif ftype == protocol.ROW_BATCH:
                rows.extend(protocol.decode_row_batch(payload))
            elif ftype == protocol.COMPLETE:
                frame = protocol.decode_complete(payload)
                self._in_transaction = frame["in_transaction"]
                self.schema_epoch = frame["schema_epoch"]
                return Result(
                    statement=frame["tag"] or tag,
                    rows=rows,
                    columns=columns,
                    rowcount=frame["rowcount"],
                )
            elif ftype == protocol.ERROR:
                self._raise_error(payload)
            else:
                self._mark_broken()
                raise ProtocolError(
                    f"unexpected frame type 0x{ftype:02x} in query response"
                )

    # ------------------------------------------------------------------
    # Prepared statements
    # ------------------------------------------------------------------
    def prepare(self, sql: str, name: str | None = None) -> "PreparedStatement":
        """Parse ``sql`` once on the server; the returned handle
        executes by name with bound parameters, skipping the parser."""
        if name is None:
            self._next_ps += 1
            name = f"ps_{self.session_id}_{self._next_ps}"
        self._send(protocol.encode_parse(name, sql))
        ftype, payload = self._recv()
        if ftype == protocol.ERROR:
            self._raise_error(payload)
        if ftype != protocol.PARSE_OK:
            self._mark_broken()
            raise ProtocolError(
                f"unexpected frame type 0x{ftype:02x} in parse response"
            )
        return PreparedStatement(self, name, sql)

    def execute_prepared(
        self,
        statement: "PreparedStatement | str",
        params: Sequence[Any] | None = (),
    ) -> Result:
        """Run a prepared statement.  ``params=None`` executes the
        portal most recently bound with :meth:`bind` (or no params)."""
        name = statement if isinstance(statement, str) else statement.name
        ctx, start_us = self._trace_begin()
        self._send(protocol.encode_execute(
            name, params, trace=self._wire_trace(ctx)
        ))
        try:
            return self._read_query_response()
        finally:
            self._trace_end("client.execute", ctx, start_us, name=name)

    def bind(self, statement: "PreparedStatement | str",
             params: Sequence[Any]) -> None:
        """Stash a parameter row server-side (a portal);
        ``execute_prepared(name, params=None)`` runs it."""
        name = statement if isinstance(statement, str) else statement.name
        self._send(protocol.encode_bind(name, params))
        ftype, payload = self._recv()
        if ftype == protocol.ERROR:
            self._raise_error(payload)
        if ftype != protocol.BIND_OK:
            self._mark_broken()
            raise ProtocolError(
                f"unexpected frame type 0x{ftype:02x} in bind response"
            )

    # ------------------------------------------------------------------
    # Pipelining
    # ------------------------------------------------------------------
    def pipeline(self) -> "Pipeline":
        """Batch API: queue requests, write them all, then drain the
        replies::

            pipe = conn.pipeline()
            pipe.execute("SELECT * FROM t WHERE k = ?", [1])
            pipe.execute_prepared(ps, [2])
            results = pipe.sync()   # [Result | ReproError, ...]
        """
        return Pipeline(self)

    def _txn_op(self, op: int) -> None:
        ctx, start_us = self._trace_begin()
        self._send(protocol.encode_txn(op, trace=self._wire_trace(ctx)))
        try:
            ftype, payload = self._recv()
            if ftype == protocol.ERROR:
                self._raise_error(payload)
            if ftype != protocol.COMPLETE:
                self._mark_broken()
                raise ProtocolError(
                    f"unexpected frame type 0x{ftype:02x} in txn response"
                )
            frame = protocol.decode_complete(payload)
            self._in_transaction = frame["in_transaction"]
            self.schema_epoch = frame["schema_epoch"]
        finally:
            self._trace_end("client.txn", ctx, start_us, op=op)

    def begin(self) -> None:
        self._txn_op(protocol.TXN_BEGIN)

    def commit(self) -> None:
        self._txn_op(protocol.TXN_COMMIT)

    def rollback(self) -> None:
        self._txn_op(protocol.TXN_ROLLBACK)

    def transaction(self) -> "_ConnTxn":
        """Context manager mirroring ``Session.transaction()``."""
        return _ConnTxn(self)

    def reset(self) -> None:
        """Best-effort return to a clean no-transaction state (the
        client-side half of abort-retry loops).  Never raises."""
        if self._closed:
            return
        if self._in_transaction:
            try:
                self.rollback()
            except (ReproError, OSError):
                pass

    # ------------------------------------------------------------------
    # Health + admin
    # ------------------------------------------------------------------
    def ping(self, timeout: float = 2.0) -> bool:
        """Round-trip liveness probe (pool health checks)."""
        if self._closed:
            return False
        try:
            self._sock.settimeout(timeout)
            try:
                self._send(protocol.encode_ping())
                ftype, payload = self._recv()
            finally:
                if not self._closed:
                    self._sock.settimeout(None)
        except (NetworkError, OSError):
            return False
        if ftype != protocol.PONG:
            self._mark_broken()
            return False
        self.schema_epoch = protocol.decode_pong(payload)["schema_epoch"]
        return True

    def meta(self, command: str) -> str:
        """Admin passthrough (``\\metrics`` / ``\\progress`` for the
        remote shell)."""
        self._send(protocol.encode_meta(command))
        ftype, payload = self._recv()
        if ftype == protocol.ERROR:
            self._raise_error(payload)
        if ftype != protocol.META_RESULT:
            self._mark_broken()
            raise ProtocolError(
                f"unexpected frame type 0x{ftype:02x} in meta response"
            )
        return protocol.decode_meta_result(payload)["text"]

    # -- monitoring convenience (JSON forms of the META commands) ------
    def monitor_summary(self) -> dict:
        """The server's live ``\\top`` summary: QPS, latency
        percentiles, wait classes, migration progress, health report,
        worker/inbox stats."""
        return json.loads(self.meta("top json"))

    def metrics_history(self, seconds: float | None = None) -> dict:
        """The server's metrics-history ring (``rows`` + ``summary``),
        optionally restricted to the trailing window."""
        command = "history json" if seconds is None else f"history json {seconds}"
        return json.loads(self.meta(command))

    def health(self) -> dict:
        """The server's health report (rule rows + overall status)."""
        return json.loads(self.meta("health json"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent: sends a clean goodbye if the socket still works."""
        if self._closed:
            return
        try:
            self._stream.send_frame(protocol.encode_close())
        except OSError:
            pass
        self._mark_broken()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class PreparedStatement:
    """Client handle to a server-side parsed statement."""

    __slots__ = ("conn", "name", "sql")

    def __init__(self, conn: Connection, name: str, sql: str) -> None:
        self.conn = conn
        self.name = name
        self.sql = sql

    def execute(self, params: Sequence[Any] | None = ()) -> Result:
        return self.conn.execute_prepared(self, params)

    def bind(self, params: Sequence[Any]) -> None:
        self.conn.bind(self, params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedStatement({self.name!r}, {self.sql!r})"


class Pipeline:
    """Queue N requests, write them as one batch, read N replies.

    The server processes a connection's frames strictly in order and
    answers in the same order, so ``sync()`` maps reply *i* to queued
    request *i*.  Engine errors (constraint violation, abort, schema
    version) are **embedded** in the result list as exception
    instances — the connection stays usable, later replies still
    arrive.  Transport errors (dead socket, server kill) raise and
    break the connection, exactly like serial execution.
    """

    def __init__(self, conn: Connection) -> None:
        self._conn = conn
        self._buf = bytearray()
        self._ops: list[str] = []  # "query" | "txn" (reply shapes)
        # One root context per queued op (None when tracing is off),
        # parallel to ``results`` — how a caller maps reply *i* to its
        # request tree in the server's TraceLog.
        self.traces: list[TraceContext | None] = []
        self.results: list[Result | ReproError] | None = None

    def __len__(self) -> int:
        return len(self._ops)

    def _queue_trace(self) -> tuple[int, int] | None:
        ctx, _ = self._conn._trace_begin()
        self.traces.append(ctx)
        return self._conn._wire_trace(ctx)

    def execute(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Queue a QUERY; returns its index into ``sync()``'s list."""
        self._buf += protocol.encode_query(
            sql, params, trace=self._queue_trace()
        )
        self._ops.append("query")
        return len(self._ops) - 1

    def execute_prepared(
        self,
        statement: PreparedStatement | str,
        params: Sequence[Any] | None = (),
    ) -> int:
        name = statement if isinstance(statement, str) else statement.name
        self._buf += protocol.encode_execute(
            name, params, trace=self._queue_trace()
        )
        self._ops.append("query")
        return len(self._ops) - 1

    def begin(self) -> int:
        self._buf += protocol.encode_txn(
            protocol.TXN_BEGIN, trace=self._queue_trace()
        )
        self._ops.append("txn")
        return len(self._ops) - 1

    def commit(self) -> int:
        self._buf += protocol.encode_txn(
            protocol.TXN_COMMIT, trace=self._queue_trace()
        )
        self._ops.append("txn")
        return len(self._ops) - 1

    def rollback(self) -> int:
        self._buf += protocol.encode_txn(
            protocol.TXN_ROLLBACK, trace=self._queue_trace()
        )
        self._ops.append("txn")
        return len(self._ops) - 1

    def sync(self) -> list[Result | ReproError]:
        """Flush every queued frame in one write, then read one reply
        per request, in order."""
        conn = self._conn
        ops, self._ops = self._ops, []
        buf, self._buf = self._buf, bytearray()
        if not ops:
            self.results = []
            return self.results
        if conn._closed:
            raise ConnectionClosedError("connection is closed")
        log = conn._trace_log
        start_us = log.now_us() if log is not None else 0.0
        try:
            conn._sock.sendall(buf)
        except OSError as exc:
            conn._mark_broken()
            raise ConnectionClosedError(f"send failed: {exc}") from exc
        conn.bytes_out += len(buf)
        results: list[Result | ReproError] = []
        try:
            for kind in ops:
                if kind == "txn":
                    results.append(self._read_txn_reply())
                else:
                    results.append(self._read_query_reply())
        finally:
            if log is not None and conn._trace:
                # One client-side span covers the whole batch (the
                # writes were coalesced, so per-op client timing does
                # not exist); per-op trees hang off ``self.traces``.
                first = next((c for c in self.traces if c is not None), None)
                args: dict[str, Any] = {"ops": len(ops)}
                if first is not None:
                    args["trace"] = first.trace_id
                    args["span"] = first.span_id
                log.complete(
                    "client.pipeline.sync", start_us, cat="client",
                    args=args,
                )
        self.results = results
        return results

    def _read_query_reply(self) -> Result | ReproError:
        conn = self._conn
        columns: list[str] = []
        rows: list[tuple] = []
        tag = ""
        while True:
            ftype, payload = conn._recv()
            if ftype == protocol.ROW_HEADER:
                header = protocol.decode_row_header(payload)
                tag = header["tag"]
                columns = header["columns"]
            elif ftype == protocol.ROW_BATCH:
                rows.extend(protocol.decode_row_batch(payload))
            elif ftype == protocol.COMPLETE:
                frame = protocol.decode_complete(payload)
                conn._in_transaction = frame["in_transaction"]
                conn.schema_epoch = frame["schema_epoch"]
                return Result(
                    statement=frame["tag"] or tag,
                    rows=rows,
                    columns=columns,
                    rowcount=frame["rowcount"],
                )
            elif ftype == protocol.ERROR:
                exc = conn._decode_error(payload)
                if conn._closed:
                    # The server killed the connection after this
                    # frame: nothing further will arrive.
                    raise exc
                return exc
            else:
                conn._mark_broken()
                raise ProtocolError(
                    f"unexpected frame type 0x{ftype:02x} in pipeline reply"
                )

    def _read_txn_reply(self) -> Result | ReproError:
        conn = self._conn
        ftype, payload = conn._recv()
        if ftype == protocol.ERROR:
            exc = conn._decode_error(payload)
            if conn._closed:
                raise exc
            return exc
        if ftype != protocol.COMPLETE:
            conn._mark_broken()
            raise ProtocolError(
                f"unexpected frame type 0x{ftype:02x} in pipeline txn reply"
            )
        frame = protocol.decode_complete(payload)
        conn._in_transaction = frame["in_transaction"]
        conn.schema_epoch = frame["schema_epoch"]
        return Result(statement=frame["tag"], rowcount=frame["rowcount"])

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self._ops:
            self.sync()
        return False


class _ConnTxn:
    def __init__(self, conn: Connection) -> None:
        self.conn = conn

    def __enter__(self) -> Connection:
        self.conn.begin()
        return self.conn

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.conn.in_transaction:
                self.conn.commit()
        else:
            if self.conn.in_transaction and not self.conn.closed:
                try:
                    self.conn.rollback()
                except (ReproError, OSError):
                    pass
        return False


class ConnectionPool:
    """Thread-safe pool of :class:`Connection`\\ s.

    ``acquire()`` health-checks the pooled connection (one PING round
    trip) and transparently replaces dead ones, reconnecting with
    decorrelated-jitter backoff — so a pool survives a server restart
    or a connection killed mid-migration without its callers seeing
    anything but latency, and without every worker hammering the
    listener in lockstep when it comes back.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 5433,
        size: int = 8,
        connect_timeout: float = 10.0,
        max_connect_attempts: int = 5,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        health_check: bool = True,
        auto_prepare: int = 0,
        isolation: str | None = None,
        trace: bool = False,
        trace_log: Any = None,
        obs: Any = None,
        factory: Callable[[], Connection] | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.health_check = health_check
        self.max_connect_attempts = max_connect_attempts
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        # Optional in-process Observability: acquire() reports how long
        # callers waited for a connection as the ``pool`` wait class.
        self._obs = obs
        self._factory = factory or (
            lambda: Connection(host, port, connect_timeout=connect_timeout,
                               client_name="repro-pool",
                               auto_prepare=auto_prepare,
                               isolation=isolation,
                               trace=trace, trace_log=trace_log)
        )
        self._idle: list[Connection] = []
        self._latch = threading.Lock()
        self._slots = threading.Semaphore(size)
        self._closed = False
        self._close_wakeup = threading.Event()
        self._created = 0
        # Observable pool accounting (tests + driver reconnect stats).
        # ``reconnects`` counts *replacement* connections only; filling
        # the pool for the first time is not a reconnect.
        self.reconnects = 0
        self.health_check_failures = 0
        self._in_use = 0
        # Wall-clock of the last successful health-check PING (None
        # until the first checked acquire) — ``stats()["last_ping"]``.
        self.last_ping: float | None = None

    # ------------------------------------------------------------------
    def _connect_with_backoff(self) -> Connection:
        delays = decorrelated_jitter(self.backoff, self.backoff_cap)
        last: Exception | None = None
        for attempt in range(self.max_connect_attempts):
            if self._closed:
                raise ConnectionClosedError("pool is closed")
            try:
                return self._factory()
            except NetworkError as exc:
                last = exc
                if attempt + 1 == self.max_connect_attempts:
                    break
                # close() sets the event, so a backoff sleep ends the
                # moment the pool shuts down instead of running its
                # full schedule against a dead pool.
                if self._close_wakeup.wait(next(delays)):
                    raise ConnectionClosedError("pool is closed") from exc
        assert last is not None
        raise last

    def acquire(self) -> "_PooledConnection":
        """Context manager handing out a healthy connection::

            with pool.acquire() as conn:
                conn.execute("SELECT 1")
        """
        if self._closed:
            raise ConnectionClosedError("pool is closed")
        began = time.perf_counter()
        self._slots.acquire()
        try:
            conn: Connection | None = None
            with self._latch:
                if self._idle:
                    conn = self._idle.pop()
            if conn is not None and self.health_check:
                if conn.closed or not conn.ping():
                    with self._latch:
                        self.health_check_failures += 1
                    conn.close()
                    conn = None
                else:
                    self.last_ping = time.time()
            if conn is None:
                conn = self._connect_with_backoff()
                with self._latch:
                    self._created += 1
                    if self._created > self.size:
                        self.reconnects += 1
            # ``close()`` may have raced the connect above: a pool that
            # is closed must never hand out (and thereby leak) a fresh
            # connection.
            if self._closed:
                conn.close()
                raise ConnectionClosedError("pool is closed")
            obs = self._obs
            if obs is not None and obs.active:
                # Everything between the caller asking and getting a
                # healthy connection — semaphore wait, health check,
                # reconnect backoff — is ``pool`` wait.
                waited = time.perf_counter() - began
                obs.record_wait("pool", waited)
                if obs.tracing_enabled:
                    end_us = obs.trace.now_us()
                    obs.trace.complete(
                        "pool.acquire", end_us - waited * 1e6, cat="net",
                        args={"wait": "pool"}, end_us=end_us,
                    )
            with self._latch:
                self._in_use += 1
            return _PooledConnection(self, conn)
        except BaseException:
            self._slots.release()
            raise

    def _release(self, conn: Connection) -> None:
        # The slot must come back no matter what happens to the
        # connection — a reset/close failure that leaked the semaphore
        # would shrink the pool forever and eventually deadlock
        # ``acquire()``.
        try:
            if conn.in_transaction:
                # A connection must come back clean; a caller that
                # leaked a transaction gets it rolled back here.
                try:
                    conn.reset()
                except (ReproError, OSError):
                    pass
            with self._latch:
                self._in_use -= 1
                keep = (
                    not self._closed
                    and not conn.closed
                    and not conn.in_transaction
                    and len(self._idle) < self.size
                )
                if keep:
                    self._idle.append(conn)
            if not keep:
                try:
                    conn.close()
                except (ReproError, OSError):
                    pass
        finally:
            self._slots.release()

    def stats(self) -> dict[str, Any]:
        """Point-in-time pool accounting — the router's per-shard pools
        surface this in ``bullfrog_stat_shards`` / ``\\shards``.

        ``last_ping`` is wall-clock seconds (``time.time()``) of the
        most recent successful health-check PING, or ``None``.
        """
        with self._latch:
            return {
                "size": self.size,
                "in_use": self._in_use,
                "idle": len(self._idle),
                "created": self._created,
                "reconnects": self.reconnects,
                "health_check_failures": self.health_check_failures,
                "last_ping": self.last_ping,
            }

    def close(self) -> None:
        with self._latch:
            self._closed = True
            idle, self._idle = self._idle, []
        # Wake any acquire() sleeping in a reconnect backoff.
        self._close_wakeup.set()
        for conn in idle:
            conn.close()


class _PooledConnection:
    """Checkout handle; returns the connection to the pool on exit."""

    def __init__(self, pool: ConnectionPool, conn: Connection) -> None:
        self.pool = pool
        self.conn = conn
        self._returned = False

    def __enter__(self) -> Connection:
        return self.conn

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def release(self) -> None:
        if self._returned:
            return
        self._returned = True
        self.pool._release(self.conn)
