"""Tests for the Database facade: sessions, interceptors, row hooks."""

import pytest

from repro import Database
from repro.db import Result
from repro.errors import ExecutionError
from repro.sql import ast_nodes as ast


@pytest.fixture
def s(db):
    session = db.connect()
    session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    session.execute("INSERT INTO t VALUES (1, 10)")
    session.execute("INSERT INTO t VALUES (2, 20)")
    return session


class TestResult:
    def test_fields(self):
        result = Result("SELECT", rows=[(1, "a")], columns=["id", "n"], rowcount=1)
        assert result.scalar() == 1
        assert result.dicts() == [{"id": 1, "n": "a"}]

    def test_empty(self):
        result = Result("SELECT")
        assert result.scalar() is None
        assert result.dicts() == []


class TestInterceptor:
    def test_interceptor_called_for_dml_and_select(self, db, s):
        calls = []
        db.set_statement_interceptor(
            lambda session, stmt, params, sql_text: calls.append(
                type(stmt).__name__
            )
        )
        s.execute("SELECT * FROM t")
        s.execute("INSERT INTO t VALUES (3, 30)")
        s.execute("UPDATE t SET v = 0 WHERE id = 3")
        s.execute("DELETE FROM t WHERE id = 3")
        assert calls == ["Select", "Insert", "Update", "Delete"]

    def test_interceptor_not_called_for_ddl(self, db, s):
        calls = []
        db.set_statement_interceptor(lambda *args: calls.append(1))
        s.execute("CREATE TABLE other (x INT)")
        assert calls == []

    def test_internal_session_skips_interceptor(self, db, s):
        calls = []
        db.set_statement_interceptor(lambda *args: calls.append(1))
        s.internal = True
        s.execute("SELECT * FROM t")
        assert calls == []

    def test_interceptor_cleared(self, db, s):
        calls = []
        db.set_statement_interceptor(lambda *a: calls.append(1))
        db.set_statement_interceptor(None)
        s.execute("SELECT * FROM t")
        assert calls == []

    def test_interceptor_receives_params(self, db, s):
        seen = {}
        db.set_statement_interceptor(
            lambda session, stmt, params, sql_text: seen.update(
                params=list(params), sql=sql_text
            )
        )
        s.execute("SELECT * FROM t WHERE id = ?", [42])
        assert seen["params"] == [42]
        assert seen["sql"] == "SELECT * FROM t WHERE id = ?"


class TestRowHooks:
    def test_hooks_fire_per_operation(self, db, s):
        events = []
        db.add_row_hook(
            "t", lambda ctx, op, tid, old, new: events.append((op, old, new))
        )
        s.execute("INSERT INTO t VALUES (3, 30)")
        s.execute("UPDATE t SET v = 31 WHERE id = 3")
        s.execute("DELETE FROM t WHERE id = 3")
        ops = [e[0] for e in events]
        assert ops == ["INSERT", "UPDATE", "DELETE"]
        assert events[0][2] == (3, 30)  # new row on insert
        assert events[1][1] == (3, 30) and events[1][2] == (3, 31)
        assert events[2][1] == (3, 31)  # old row on delete

    def test_hooks_scoped_per_table(self, db, s):
        events = []
        s.execute("CREATE TABLE other (x INT)")
        db.add_row_hook("other", lambda *a: events.append(1))
        s.execute("INSERT INTO t VALUES (5, 50)")
        assert events == []

    def test_remove_row_hooks(self, db, s):
        events = []
        db.add_row_hook("t", lambda *a: events.append(1))
        db.remove_row_hooks("t")
        s.execute("INSERT INTO t VALUES (6, 60)")
        assert events == []

    def test_hook_writes_share_transaction(self, db, s):
        """A hook writing through the same ctx participates in the
        client's transaction (this is how multi-step dual-writes stay
        atomic)."""
        s.execute("CREATE TABLE mirror (id INT, v INT)")
        executor = db.executor
        catalog = db.catalog

        def mirror_hook(ctx, op, tid, old, new):
            if op == "INSERT":
                executor.insert_rows(
                    catalog.table("mirror"),
                    [{"id": new[0], "v": new[1]}],
                    ctx,
                )

        db.add_row_hook("t", mirror_hook)
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (7, 70)")
        s.execute("ROLLBACK")
        assert s.execute("SELECT COUNT(*) FROM mirror").scalar() == 0
        s.execute("INSERT INTO t VALUES (8, 80)")
        assert s.execute("SELECT COUNT(*) FROM mirror").scalar() == 1


class TestSessionMisc:
    def test_parse_cache_reuse(self, db, s):
        sql = "SELECT v FROM t WHERE id = ?"
        first = db.parse(sql)
        second = db.parse(sql)
        assert first is second

    def test_execute_statement_directly(self, db, s):
        stmt = db.parse("SELECT COUNT(*) FROM t")
        result = s.execute_statement(stmt)
        assert result.scalar() == 2

    def test_unsupported_statement_type(self, s):
        class Alien:
            pass

        with pytest.raises(ExecutionError):
            s.execute_statement(Alien())  # type: ignore[arg-type]

    def test_multiple_sessions_independent_txns(self, db, s):
        other = db.connect()
        s.execute("BEGIN")
        assert not other.in_transaction
        s.execute("ROLLBACK")

    def test_allow_retired_session(self, db, s):
        db.catalog.retire_table("t")
        internal = db.connect(allow_retired=True)
        assert internal.execute("SELECT COUNT(*) FROM t").scalar() == 2
