"""Migration classification (paper section 3.1).

Each migration statement is classified by how input tuples map to
output tuples, which dictates the tracking structure:

* **1:1** — single input table, no GROUP BY, single output; or the
  foreign-key side of an FK-PK join (section 3.6, option 2).  Bitmap.
* **1:n** — a table *split*: several outputs fed by the same single
  input (each input tuple produces a row in every output).  Bitmap; the
  migrate bit is only set once all dependent output rows exist.
* **n:1** — GROUP BY aggregation: a group of input tuples produces one
  output tuple.  Hashmap keyed by the group-by columns.
* **n:n** — a many-to-many join: hashmap keyed by the join value (both
  sides of a join value migrate together), or by (tuple, tuple) pairs
  (section 3.6, option 3) — we implement the join-value keying, which
  is what the paper's TPC-C join migration exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import UnsupportedMigrationError
from ..sql import ast_nodes as ast
from ..exec.rewrite import qualify_columns, split_conjuncts
from ..exec.expressions import RowLayout


class MigrationCategory(Enum):
    ONE_TO_ONE = "1:1"
    ONE_TO_N = "1:n"
    N_TO_ONE = "n:1"
    N_TO_N = "n:n"

    @property
    def uses_bitmap(self) -> bool:
        return self in (MigrationCategory.ONE_TO_ONE, MigrationCategory.ONE_TO_N)

    @property
    def uses_hashmap(self) -> bool:
        return not self.uses_bitmap


@dataclass
class OutputSpec:
    """One output table of a migration unit."""

    table: str
    column_names: tuple[str, ...]
    items: tuple[ast.Expr, ...]  # projection exprs over old-schema bindings
    select: ast.Select  # full qualified SELECT producing this output


@dataclass
class AuxJoin:
    """The looked-up side of an FK-PK join for a bitmap unit: for each
    anchor tuple, fetch the matching aux tuple(s) by equality on
    ``pairs`` = [(anchor_column, aux_column), ...]."""

    table: str
    binding: str
    pairs: tuple[tuple[str, str], ...]


@dataclass
class JoinKeySpec:
    """Keying for an n:n join unit: equality columns on each side."""

    anchor_columns: tuple[str, ...]
    other_table: str
    other_binding: str
    other_columns: tuple[str, ...]


@dataclass
class UnitPlan:
    """A classified migration unit: one tracked input table feeding one
    or more outputs."""

    unit_id: str
    category: MigrationCategory
    anchor: str  # the input table whose granules/groups are tracked
    anchor_binding: str
    outputs: list[OutputSpec]
    aux: AuxJoin | None = None  # bitmap FK-PK join units
    group_columns: tuple[str, ...] = ()  # hashmap n:1 units
    join_key: JoinKeySpec | None = None  # hashmap n:n units
    static_filter: ast.Expr | None = None  # extra WHERE retained in selects

    @property
    def input_tables(self) -> tuple[str, ...]:
        tables = [self.anchor]
        if self.aux is not None:
            tables.append(self.aux.table)
        if self.join_key is not None:
            tables.append(self.join_key.other_table)
        return tuple(dict.fromkeys(tables))

    @property
    def output_tables(self) -> tuple[str, ...]:
        return tuple(output.table for output in self.outputs)


@dataclass
class MappingStatement:
    """A parsed migration mapping: output table + SELECT over old schema."""

    output_table: str
    select: ast.Select


def classify_statement(
    mapping: MappingStatement,
    catalog,
    unit_id: str,
    fkpk_join_mode: str = "fkit-bitmap",
) -> UnitPlan:
    """Classify one mapping statement into a :class:`UnitPlan`.

    ``fkpk_join_mode`` selects between the paper's two FK-PK join
    options (section 3.6):

    * ``"fkit-bitmap"`` (option 2, the default) — 1:1 bitmap on the
      foreign-key input table, no lock/migrate state on the PK side;
      "preferable when the cardinality of the foreign key is small or
      when there is skew".
    * ``"value-hashmap"`` (option 1) — migrate all FK tuples sharing a
      key together, which "turns the 1:1 migration on the FKIT side
      into an n:n migration": a hashmap keyed by the join value.
    """
    select = mapping.select
    sources, conjuncts = _flatten_from(select)
    if not sources:
        raise UnsupportedMigrationError(
            f"migration for {mapping.output_table} has no input tables"
        )
    if len(sources) > 2:
        raise UnsupportedMigrationError(
            "migrations over more than two input tables are not supported"
        )
    # Build the combined layout for qualification.
    layout = RowLayout()
    for name, binding in sources:
        table = catalog.table(name)
        for column in table.schema.column_names:
            layout.add(binding, column)

    def resolve(ref: ast.ColumnRef) -> ast.ColumnRef:
        if ref.table is not None:
            layout.position(ref)
            return ref
        position = layout.position(ref)
        binding, column = layout.columns[position]
        return ast.ColumnRef(column, binding)

    conjuncts = [qualify_columns(c, resolve) for c in conjuncts]
    where_conjuncts = [
        qualify_columns(c, resolve) for c in split_conjuncts(select.where)
    ]
    all_conjuncts = conjuncts + where_conjuncts
    group_by = [qualify_columns(g, resolve) for g in select.group_by]

    items = _expand_items(select, sources, catalog, resolve)
    column_names = tuple(
        item.alias or _item_name(item.expr, index)
        for index, item in enumerate(items)
    )
    qualified_select = _rebuild_select(select, sources, items, all_conjuncts, group_by)
    output = OutputSpec(
        table=mapping.output_table,
        column_names=column_names,
        items=tuple(item.expr for item in items),
        select=qualified_select,
    )

    binding_of = {name: binding for name, binding in sources}

    if group_by:
        if len(sources) != 1:
            raise UnsupportedMigrationError(
                "GROUP BY migrations over joins are not supported"
            )
        anchor, binding = sources[0]
        group_columns: list[str] = []
        for expr in group_by:
            if not isinstance(expr, ast.ColumnRef):
                raise UnsupportedMigrationError(
                    "GROUP BY migration keys must be plain columns"
                )
            group_columns.append(expr.name)
        return UnitPlan(
            unit_id=unit_id,
            category=MigrationCategory.N_TO_ONE,
            anchor=anchor,
            anchor_binding=binding,
            outputs=[output],
            group_columns=tuple(group_columns),
        )

    if len(sources) == 1:
        anchor, binding = sources[0]
        return UnitPlan(
            unit_id=unit_id,
            category=MigrationCategory.ONE_TO_ONE,
            anchor=anchor,
            anchor_binding=binding,
            outputs=[output],
            static_filter=_static_filter(all_conjuncts),
        )

    # Two-table join.
    (left_name, left_binding), (right_name, right_binding) = sources
    equi_pairs = _equi_pairs(all_conjuncts, left_binding, right_binding)
    if not equi_pairs:
        raise UnsupportedMigrationError(
            "join migrations require at least one equality join condition"
        )
    left_cols = tuple(pair[0] for pair in equi_pairs)
    right_cols = tuple(pair[1] for pair in equi_pairs)
    left_unique = _covers_unique(catalog.table(left_name), left_cols)
    right_unique = _covers_unique(catalog.table(right_name), right_cols)

    if (left_unique or right_unique) and fkpk_join_mode == "fkit-bitmap":
        # FK-PK join: section 3.6 option 2 — track the FK input table
        # with a 1:1 bitmap, no lock/migrate state on the PK side.
        if right_unique:
            anchor, anchor_binding = left_name, left_binding
            aux = AuxJoin(right_name, right_binding, tuple(equi_pairs))
        else:
            anchor, anchor_binding = right_name, right_binding
            flipped = tuple((r, l) for l, r in equi_pairs)
            aux = AuxJoin(left_name, left_binding, flipped)
        return UnitPlan(
            unit_id=unit_id,
            category=MigrationCategory.ONE_TO_ONE,
            anchor=anchor,
            anchor_binding=anchor_binding,
            outputs=[output],
            aux=aux,
            static_filter=_static_filter(all_conjuncts),
        )
    if (left_unique or right_unique) and fkpk_join_mode != "value-hashmap":
        raise UnsupportedMigrationError(
            f"unknown fkpk_join_mode {fkpk_join_mode!r}"
        )
    # Section 3.6 option 1 for FK-PK joins, and the general m:n case:
    # hashmap keyed by the join value.  Anchor the FK/left side so key
    # enumeration scans the side every joined row comes from.

    # Many-to-many join: hashmap keyed by the join value.
    return UnitPlan(
        unit_id=unit_id,
        category=MigrationCategory.N_TO_N,
        anchor=left_name,
        anchor_binding=left_binding,
        outputs=[output],
        join_key=JoinKeySpec(
            anchor_columns=left_cols,
            other_table=right_name,
            other_binding=right_binding,
            other_columns=right_cols,
        ),
    )


def coalesce_units(units: list[UnitPlan]) -> list[UnitPlan]:
    """Merge 1:1 units that share the same anchor (and aux shape) into a
    single 1:n unit — the table-split case (section 3.1: one bitmap, the
    migrate bit set only after all dependent output tuples exist)."""
    merged: list[UnitPlan] = []
    by_signature: dict[tuple, UnitPlan] = {}
    for unit in units:
        if unit.category is not MigrationCategory.ONE_TO_ONE:
            merged.append(unit)
            continue
        aux_signature = (
            (unit.aux.table, unit.aux.pairs) if unit.aux is not None else None
        )
        signature = (unit.anchor, unit.anchor_binding, aux_signature)
        existing = by_signature.get(signature)
        if existing is None:
            by_signature[signature] = unit
            merged.append(unit)
        else:
            existing.outputs.extend(unit.outputs)
            existing.category = MigrationCategory.ONE_TO_N
    return merged


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _flatten_from(select: ast.Select) -> tuple[list[tuple[str, str]], list[ast.Expr]]:
    """Flatten FROM into [(table, binding)] + join conjuncts.  Only base
    table references and INNER/CROSS joins are allowed in migration DDL."""
    sources: list[tuple[str, str]] = []
    conjuncts: list[ast.Expr] = []

    def walk_item(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            sources.append((item.name, item.binding))
            return
        if isinstance(item, ast.Join) and item.kind in ("INNER", "CROSS"):
            walk_item(item.left)
            walk_item(item.right)
            if item.condition is not None:
                conjuncts.extend(split_conjuncts(item.condition))
            return
        raise UnsupportedMigrationError(
            "migration DDL may only reference base tables with inner joins"
        )

    for item in select.from_items:
        walk_item(item)
    return sources, conjuncts


def _expand_items(select, sources, catalog, resolve) -> list[ast.SelectItem]:
    items: list[ast.SelectItem] = []
    for item in select.items:
        if isinstance(item.expr, ast.Star):
            for name, binding in sources:
                if item.expr.table is not None and item.expr.table != binding:
                    continue
                table = catalog.table(name)
                for column in table.schema.column_names:
                    items.append(
                        ast.SelectItem(ast.ColumnRef(column, binding), None)
                    )
        else:
            items.append(
                ast.SelectItem(qualify_columns(item.expr, resolve), item.alias)
            )
    return items


def _item_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    return f"column{index + 1}"


def _rebuild_select(select, sources, items, conjuncts, group_by) -> ast.Select:
    """Normalized, fully-qualified version of the mapping SELECT with
    all join conditions folded into WHERE."""
    from_items = tuple(ast.TableRef(name, binding if binding != name else None)
                       for name, binding in sources)
    where = None
    for conjunct in conjuncts:
        where = conjunct if where is None else ast.BinaryOp("AND", where, conjunct)
    return ast.Select(
        items=tuple(items),
        from_items=from_items,
        where=where,
        group_by=tuple(group_by),
        having=select.having,
        distinct=select.distinct,
    )


def _equi_pairs(
    conjuncts: list[ast.Expr], left_binding: str, right_binding: str
) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            continue
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
            continue
        if left.table == left_binding and right.table == right_binding:
            pairs.append((left.name, right.name))
        elif left.table == right_binding and right.table == left_binding:
            pairs.append((right.name, left.name))
    return pairs


def _covers_unique(table, columns: tuple[str, ...]) -> bool:
    """True if ``columns`` contain some unique column set of ``table`` —
    i.e. equality on them matches at most one row (the PK side)."""
    available = set(columns)
    return any(
        set(unique_set) <= available
        for unique_set in table.schema.unique_column_sets()
    )


def _static_filter(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """Non-join conjuncts retained as a static filter (constraints added
    during migration may drop rows — 1:1 'at most one' semantics)."""
    static = [
        c
        for c in conjuncts
        if not (
            isinstance(c, ast.BinaryOp)
            and c.op == "="
            and isinstance(c.left, ast.ColumnRef)
            and isinstance(c.right, ast.ColumnRef)
        )
    ]
    result = None
    for conjunct in static:
        result = conjunct if result is None else ast.BinaryOp("AND", result, conjunct)
    return result
