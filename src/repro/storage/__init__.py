"""Physical storage: TIDs, slotted pages, heap tables, and indexes."""

from .tid import Tid
from .page import DEFAULT_PAGE_CAPACITY, Page
from .heap import HeapTable
from .index import HashIndex, Index, OrderedIndex

__all__ = [
    "Tid",
    "Page",
    "DEFAULT_PAGE_CAPACITY",
    "HeapTable",
    "HashIndex",
    "OrderedIndex",
    "Index",
]
