"""Migration specifications: parsing the migration DDL script.

A schema migration is submitted as "one or more DDL statements"
(paper section 2.1).  Supported forms:

* ``CREATE TABLE out AS SELECT ...`` — output schema inferred from the
  SELECT (the paper's running example);
* ``CREATE TABLE out (col type ..., constraints)`` followed by
  ``INSERT INTO out [cols] SELECT ...`` — explicit output schema, which
  is how the migration "explicitly (re)declares any integrity
  constraints that must be enforced on the new schema" (section 2.3);
* ``CREATE INDEX ... ON out (...)`` — secondary indexes on outputs
  ("the orderline_stock table retains all secondary indexes of the two
  tables that generated it", section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UnsupportedMigrationError
from ..sql import ast_nodes as ast
from ..sql.parser import parse_script
from .classify import (
    MappingStatement,
    MigrationCategory,
    UnitPlan,
    classify_statement,
    coalesce_units,
)


@dataclass
class MigrationSpec:
    """A parsed, classified migration."""

    migration_id: str
    units: list[UnitPlan]
    explicit_schemas: dict[str, ast.CreateTable] = field(default_factory=dict)
    index_statements: list[ast.CreateIndex] = field(default_factory=list)

    @property
    def input_tables(self) -> tuple[str, ...]:
        tables: list[str] = []
        for unit in self.units:
            tables.extend(unit.input_tables)
        return tuple(dict.fromkeys(tables))

    @property
    def output_tables(self) -> tuple[str, ...]:
        tables: list[str] = []
        for unit in self.units:
            tables.extend(unit.output_tables)
        return tuple(dict.fromkeys(tables))

    def unit_for_output(self, table_name: str) -> UnitPlan | None:
        for unit in self.units:
            if table_name in unit.output_tables:
                return unit
        return None

    def describe(self) -> str:
        """Human-readable summary (used by examples and logs)."""
        lines = [f"migration {self.migration_id!r}:"]
        for unit in self.units:
            outputs = ", ".join(unit.output_tables)
            lines.append(
                f"  [{unit.category.value}] {unit.anchor} -> {outputs} "
                f"({'bitmap' if unit.category.uses_bitmap else 'hashmap'})"
            )
        return "\n".join(lines)

    def summary(self) -> dict:
        """Structured summary — attached to the ``migrate.submit`` trace
        event and the shell's ``\\progress`` surface."""
        return {
            "migration": self.migration_id,
            "units": len(self.units),
            "categories": [unit.category.value for unit in self.units],
            "inputs": list(self.input_tables),
            "outputs": list(self.output_tables),
        }


def parse_migration(
    migration_id: str,
    ddl: str,
    catalog,
    fkpk_join_mode: str = "fkit-bitmap",
) -> MigrationSpec:
    """Parse + classify a migration DDL script against ``catalog``.
    ``fkpk_join_mode`` selects the section 3.6 join-tracking option
    (see :func:`repro.core.classify.classify_statement`)."""
    statements = parse_script(ddl)
    explicit_schemas: dict[str, ast.CreateTable] = {}
    mappings: list[MappingStatement] = []
    mapping_columns: dict[str, tuple[str, ...]] = {}
    indexes: list[ast.CreateIndex] = []

    for stmt in statements:
        if isinstance(stmt, ast.CreateTable):
            if stmt.as_select is not None:
                mappings.append(MappingStatement(stmt.name, stmt.as_select))
            else:
                explicit_schemas[stmt.name] = stmt
        elif isinstance(stmt, ast.Insert):
            if stmt.query is None:
                raise UnsupportedMigrationError(
                    "migration INSERT statements must use a SELECT source"
                )
            if stmt.table not in explicit_schemas:
                raise UnsupportedMigrationError(
                    f"INSERT INTO {stmt.table} has no preceding CREATE TABLE "
                    "in the migration script"
                )
            mappings.append(MappingStatement(stmt.table, stmt.query))
            if stmt.columns:
                mapping_columns[stmt.table] = stmt.columns
        elif isinstance(stmt, ast.CreateIndex):
            indexes.append(stmt)
        else:
            raise UnsupportedMigrationError(
                f"unsupported statement in migration DDL: "
                f"{type(stmt).__name__}"
            )

    if not mappings:
        raise UnsupportedMigrationError(
            "migration DDL must contain at least one CREATE TABLE AS SELECT "
            "or INSERT INTO ... SELECT statement"
        )

    units: list[UnitPlan] = []
    for position, mapping in enumerate(mappings):
        unit = classify_statement(
            mapping,
            catalog,
            unit_id=f"{migration_id}/u{position}",
            fkpk_join_mode=fkpk_join_mode,
        )
        override = mapping_columns.get(mapping.output_table)
        if override is not None:
            output = unit.outputs[0]
            if len(override) != len(output.column_names):
                raise UnsupportedMigrationError(
                    f"INSERT INTO {mapping.output_table} lists "
                    f"{len(override)} column(s) but the SELECT produces "
                    f"{len(output.column_names)}"
                )
            output.column_names = tuple(override)
        units.append(unit)
    units = coalesce_units(units)

    # Sanity: an output declared with an explicit schema must list
    # columns compatible with the mapping.
    for unit in units:
        for output in unit.outputs:
            schema_stmt = explicit_schemas.get(output.table)
            if schema_stmt is None:
                continue
            declared = tuple(c.name for c in schema_stmt.columns)
            missing = [c for c in output.column_names if c not in declared]
            if missing:
                raise UnsupportedMigrationError(
                    f"output table {output.table} does not declare "
                    f"column(s) {missing!r} produced by the migration SELECT"
                )

    return MigrationSpec(
        migration_id=migration_id,
        units=units,
        explicit_schemas=explicit_schemas,
        index_statements=indexes,
    )
