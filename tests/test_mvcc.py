"""MVCC tuple versioning and snapshot-isolation reads.

Covers the version-chain storage layer end to end through SQL: snapshot
visibility, first-updater-wins write conflicts, version GC, WAL replay
collapsing chains — and the migration interplay: snapshot readers are
served pre-migration overlays for in-flight granules instead of
blocking on the migration loop.
"""

import time

import pytest

from repro import BackgroundConfig, Database, LazyMigrationEngine
from repro.core.bitmap import Claim
from repro.errors import (
    MigrationError,
    SerializationFailure,
    StorageError,
    TransactionAborted,
)
from repro.net import protocol
from repro.testing import InvariantChecker
from repro.txn import IsolationLevel
from repro.txn.recovery import replay_redo


def make_kv_db():
    db = Database()
    # The helper session plays the writer/2PL role in these tests.
    s = db.connect(isolation="read_committed")
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(1, 4):
        s.execute("INSERT INTO t VALUES (?, ?)", [i, i * 10])
    return db, s


def make_source_db(rows=50):
    db = Database()
    s = db.connect(isolation="read_committed")
    s.execute(
        "CREATE TABLE src (id INT PRIMARY KEY, grp INT, v INT, tag VARCHAR(10))"
    )
    for i in range(rows):
        s.execute(
            "INSERT INTO src VALUES (?, ?, ?, ?)", [i, i % 5, i * 10, f"t{i % 3}"]
        )
    return db, s


SPLIT_DDL = """
CREATE TABLE left_part (id INT PRIMARY KEY, v INT);
INSERT INTO left_part (id, v) SELECT id, v FROM src;
CREATE TABLE right_part (id INT PRIMARY KEY, tag VARCHAR(10));
INSERT INTO right_part (id, tag) SELECT id, tag FROM src;
"""

AGG_DDL = """
CREATE TABLE grp_totals (grp INT PRIMARY KEY, total INT);
INSERT INTO grp_totals (grp, total)
    SELECT grp, SUM(v) FROM src GROUP BY grp;
"""


def no_background():
    return BackgroundConfig(enabled=False)


def chain_depth(heap, tid):
    version = heap.read_version(tid)
    depth = 0
    while version is not None:
        depth += 1
        version = version.prev
    return depth


# ----------------------------------------------------------------------
# Isolation plumbing
# ----------------------------------------------------------------------


class TestIsolationPlumbing:
    def test_coerce_accepts_aliases(self):
        assert IsolationLevel.coerce("snapshot") is IsolationLevel.SNAPSHOT
        assert IsolationLevel.coerce("si") is IsolationLevel.SNAPSHOT
        assert (
            IsolationLevel.coerce("read_committed")
            is IsolationLevel.READ_COMMITTED
        )
        assert IsolationLevel.coerce(None) is None
        with pytest.raises(ValueError):
            IsolationLevel.coerce("chaos")

    def test_env_var_sets_database_default(self, monkeypatch):
        monkeypatch.setenv("BULLFROG_ISOLATION", "snapshot")
        db = Database()
        assert db.default_isolation is IsolationLevel.SNAPSHOT
        assert db.connect().isolation is IsolationLevel.SNAPSHOT

    def test_session_overrides_database_default(self):
        db = Database(isolation="snapshot")
        assert db.connect().isolation is IsolationLevel.SNAPSHOT
        rc = db.connect(isolation="read_committed")
        assert rc.isolation is IsolationLevel.READ_COMMITTED

    def test_internal_sessions_stay_read_committed(self):
        db = Database(isolation="snapshot")
        s = db.connect()
        s.internal = True
        assert s.effective_isolation is IsolationLevel.READ_COMMITTED

    def test_serialization_failure_is_retryable(self):
        assert issubclass(SerializationFailure, TransactionAborted)
        assert protocol.sqlstate_for(SerializationFailure("x")) == "40001"
        assert protocol.sqlstate_for(StorageError("x")) == "XX001"


# ----------------------------------------------------------------------
# Snapshot visibility
# ----------------------------------------------------------------------


class TestSnapshotVisibility:
    def test_reader_sees_pre_update_value(self):
        db, s = make_kv_db()
        si = db.connect(isolation="snapshot")
        si.execute("BEGIN")
        assert si.execute("SELECT v FROM t WHERE id = 1").scalar() == 10
        s.execute("UPDATE t SET v = 99 WHERE id = 1")
        assert s.execute("SELECT v FROM t WHERE id = 1").scalar() == 99
        # The snapshot reader still sees the version committed before
        # its snapshot, with no lock wait.
        assert si.execute("SELECT v FROM t WHERE id = 1").scalar() == 10
        si.execute("COMMIT")
        # A fresh autocommit snapshot sees the new value.
        assert si.execute("SELECT v FROM t WHERE id = 1").scalar() == 99

    def test_reader_ignores_later_inserts_and_deletes(self):
        db, s = make_kv_db()
        si = db.connect(isolation="snapshot")
        si.execute("BEGIN")
        assert si.execute("SELECT COUNT(*) FROM t").scalar() == 3
        s.execute("INSERT INTO t VALUES (4, 40)")
        s.execute("DELETE FROM t WHERE id = 1")
        ids = sorted(r[0] for r in si.execute("SELECT id FROM t").rows)
        assert ids == [1, 2, 3]
        si.execute("COMMIT")
        ids = sorted(r[0] for r in si.execute("SELECT id FROM t").rows)
        assert ids == [2, 3, 4]

    def test_uncommitted_writes_invisible(self):
        db, s = make_kv_db()
        si = db.connect(isolation="snapshot")
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 77 WHERE id = 2")
        assert si.execute("SELECT v FROM t WHERE id = 2").scalar() == 20
        s.execute("ROLLBACK")
        assert si.execute("SELECT v FROM t WHERE id = 2").scalar() == 20

    def test_aborted_writer_leaves_no_visible_trace(self):
        db, s = make_kv_db()
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 1 WHERE id = 1")
        s.execute("INSERT INTO t VALUES (9, 90)")
        s.execute("DELETE FROM t WHERE id = 3")
        s.execute("ROLLBACK")
        si = db.connect(isolation="snapshot")
        rows = sorted(si.execute("SELECT id, v FROM t").rows)
        assert rows == [(1, 10), (2, 20), (3, 30)]

    def test_own_writes_visible_inside_snapshot_txn(self):
        db, s = make_kv_db()
        si = db.connect(isolation="snapshot")
        si.execute("BEGIN")
        si.execute("UPDATE t SET v = 55 WHERE id = 2")
        assert si.execute("SELECT v FROM t WHERE id = 2").scalar() == 55
        si.execute("INSERT INTO t VALUES (5, 50)")
        assert si.execute("SELECT COUNT(*) FROM t").scalar() == 4
        si.execute("COMMIT")
        assert s.execute("SELECT v FROM t WHERE id = 2").scalar() == 55

    def test_index_point_read_respects_snapshot(self):
        db, s = make_kv_db()
        si = db.connect(isolation="snapshot")
        si.execute("BEGIN")
        si.execute("SELECT v FROM t WHERE id = 3")
        s.execute("DELETE FROM t WHERE id = 3")
        # Index probe resolves the TID, then snapshot visibility restores
        # the pre-delete version.
        assert si.execute("SELECT v FROM t WHERE id = 3").scalar() == 30
        si.execute("COMMIT")
        assert si.execute("SELECT v FROM t WHERE id = 3").scalar() is None


# ----------------------------------------------------------------------
# Write conflicts (first-updater-wins)
# ----------------------------------------------------------------------


class TestWriteConflicts:
    def test_first_updater_wins(self):
        db, _ = make_kv_db()
        t1 = db.connect(isolation="snapshot")
        t2 = db.connect(isolation="snapshot")
        t1.execute("BEGIN")
        t2.execute("BEGIN")
        t1.execute("UPDATE t SET v = 1 WHERE id = 1")
        t1.execute("COMMIT")
        with pytest.raises(SerializationFailure):
            t2.execute("UPDATE t SET v = 2 WHERE id = 1")
        # The loser is rolled back automatically (retryable abort).
        assert not t2.in_transaction
        # The first committer's write survives.
        assert t1.execute("SELECT v FROM t WHERE id = 1").scalar() == 1

    def test_disjoint_updates_both_commit(self):
        db, _ = make_kv_db()
        t1 = db.connect(isolation="snapshot")
        t2 = db.connect(isolation="snapshot")
        t1.execute("BEGIN")
        t2.execute("BEGIN")
        t1.execute("UPDATE t SET v = 1 WHERE id = 1")
        t2.execute("UPDATE t SET v = 2 WHERE id = 2")
        t1.execute("COMMIT")
        t2.execute("COMMIT")
        rows = sorted(t1.execute("SELECT id, v FROM t").rows)
        assert rows == [(1, 1), (2, 2), (3, 30)]

    def test_delete_conflicts_too(self):
        db, s = make_kv_db()
        t2 = db.connect(isolation="snapshot")
        t2.execute("BEGIN")
        t2.execute("SELECT v FROM t WHERE id = 1")
        s.execute("UPDATE t SET v = 99 WHERE id = 1")
        with pytest.raises(SerializationFailure):
            t2.execute("DELETE FROM t WHERE id = 1")
        assert not t2.in_transaction

    def test_read_committed_txns_unaffected(self):
        db, _ = make_kv_db()
        t1 = db.connect(isolation="read_committed")
        t2 = db.connect(isolation="read_committed")
        t1.execute("BEGIN")
        t1.execute("UPDATE t SET v = 1 WHERE id = 1")
        t1.execute("COMMIT")
        t2.execute("BEGIN")
        t2.execute("UPDATE t SET v = 2 WHERE id = 1")
        t2.execute("COMMIT")
        assert t1.execute("SELECT v FROM t WHERE id = 1").scalar() == 2


# ----------------------------------------------------------------------
# Version GC and recovery
# ----------------------------------------------------------------------


class TestVersionGC:
    def test_prune_cuts_superseded_versions(self):
        db, s = make_kv_db()
        heap = db.catalog.table("t").heap
        for v in range(5):
            s.execute("UPDATE t SET v = ? WHERE id = 1", [v])
        tid = next(t for t, row in heap.scan() if row[0] == 1)
        assert chain_depth(heap, tid) > 1
        pruned = heap.prune_versions(db.txns.oldest_snapshot_ts())
        assert pruned > 0
        assert chain_depth(heap, tid) == 1
        assert s.execute("SELECT v FROM t WHERE id = 1").scalar() == 4

    def test_prune_keeps_versions_active_snapshots_need(self):
        db, s = make_kv_db()
        heap = db.catalog.table("t").heap
        si = db.connect(isolation="snapshot")
        si.execute("BEGIN")
        assert si.execute("SELECT v FROM t WHERE id = 1").scalar() == 10
        s.execute("UPDATE t SET v = 99 WHERE id = 1")
        heap.prune_versions(db.txns.oldest_snapshot_ts())
        # The version the open snapshot reads must survive the prune.
        assert si.execute("SELECT v FROM t WHERE id = 1").scalar() == 10
        si.execute("COMMIT")

    def test_recovery_collapses_chains(self):
        db, s = make_kv_db()
        for v in range(4):
            s.execute("UPDATE t SET v = ? WHERE id = 2", [v])
        s.execute("DELETE FROM t WHERE id = 3")
        s.execute("INSERT INTO t VALUES (7, 70)")
        recovered = Database()
        recovered.connect().execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        replay_redo(recovered.catalog, db.txns.wal)
        heap = recovered.catalog.table("t").heap
        live = sorted(row for _tid, row in heap.scan())
        assert live == sorted(row for _tid, row in db.catalog.table("t").heap.scan())
        # Replay applies only committed effects under the bootstrap
        # stamp: every chain collapses to a single always-visible version.
        for _tid, row in heap.scan():
            tid = next(t for t, r in heap.scan() if r == row)
            assert chain_depth(heap, tid) == 1
            assert heap.read_version(tid).stamp.ts == 0


# ----------------------------------------------------------------------
# Migration interplay: snapshot readers never block
# ----------------------------------------------------------------------


class TestMigrationSnapshotReads:
    def test_snapshot_reader_not_blocked_by_inflight_migration(self):
        """The acceptance regression: with every granule claimed by a
        (simulated) concurrent migration worker, a 2PL reader times out
        in the skip-wait loop while a snapshot reader completes with the
        full pre-migration image."""
        db, s = make_source_db()
        engine = LazyMigrationEngine(
            db, background=no_background(), skip_wait_timeout=0.5
        )
        engine.submit("m", SPLIT_DDL)
        runtime = engine.units[0]
        for g in range(runtime.tracker.size):
            assert runtime.tracker.try_begin(g) is Claim.MIGRATE

        si = db.connect(isolation="snapshot")
        start = time.monotonic()
        rows = sorted(si.execute("SELECT id, v FROM left_part").rows)
        elapsed = time.monotonic() - start
        assert rows == [(i, i * 10) for i in range(50)]
        assert elapsed < 0.45  # never entered the skip-wait loop
        # The snapshot read migrated nothing and wrote nothing.
        assert engine.stats.tuples_migrated == 0
        assert len(db.catalog.table("left_part")) == 0

        with pytest.raises(MigrationError):
            s.execute("SELECT id, v FROM left_part")

        runtime.tracker.reset(range(runtime.tracker.size))
        assert sorted(s.execute("SELECT id, v FROM left_part").rows) == rows

    def test_snapshot_point_read_through_index(self):
        db, _ = make_source_db()
        engine = LazyMigrationEngine(db, background=no_background())
        engine.submit("m", SPLIT_DDL)
        si = db.connect(isolation="snapshot")
        assert si.execute("SELECT v FROM left_part WHERE id = 7").scalar() == 70
        assert engine.stats.tuples_migrated == 0

    def test_snapshot_read_mixes_migrated_and_overlay(self):
        db, s = make_source_db()
        engine = LazyMigrationEngine(db, background=no_background())
        engine.submit("m", SPLIT_DDL)
        # Migrate one granule the 2PL way; committed before the snapshot.
        s.execute("SELECT v FROM left_part WHERE id = 7")
        assert engine.stats.tuples_migrated == 1
        si = db.connect(isolation="snapshot")
        rows = sorted(si.execute("SELECT id, v FROM left_part").rows)
        # Exactly once: the migrated granule comes from the output heap,
        # the rest from the overlay — no loss, no double count.
        assert rows == [(i, i * 10) for i in range(50)]

    def test_snapshot_agg_reads_hashmap_overlay(self):
        db, _ = make_source_db()
        engine = LazyMigrationEngine(db, background=no_background())
        engine.submit("m", AGG_DDL)
        si = db.connect(isolation="snapshot")
        expected = sum(i * 10 for i in range(50) if i % 5 == 2)
        assert (
            si.execute("SELECT total FROM grp_totals WHERE grp = 2").scalar()
            == expected
        )
        rows = sorted(si.execute("SELECT grp, total FROM grp_totals").rows)
        assert rows == [
            (g, sum(i * 10 for i in range(50) if i % 5 == g)) for g in range(5)
        ]
        assert engine.stats.tuples_migrated == 0

    def test_explicit_snapshot_txn_consistent_across_migration(self):
        db, s = make_source_db()
        engine = LazyMigrationEngine(db, background=no_background())
        engine.submit("m", SPLIT_DDL)
        si = db.connect(isolation="snapshot")
        si.execute("BEGIN")
        assert si.execute("SELECT COUNT(*) FROM left_part").scalar() == 50
        # A migration commits mid-transaction; it is newer than the
        # snapshot, so the reader keeps seeing the overlay image.
        s.execute("SELECT v FROM left_part WHERE id = 7")
        assert engine.stats.tuples_migrated == 1
        rows = sorted(si.execute("SELECT id, v FROM left_part").rows)
        assert rows == [(i, i * 10) for i in range(50)]
        si.execute("COMMIT")

    def test_snapshot_dml_still_migrates_synchronously(self):
        db, s = make_source_db()
        engine = LazyMigrationEngine(db, background=no_background())
        engine.submit("m", SPLIT_DDL)
        si = db.connect(isolation="snapshot")
        si.execute("UPDATE left_part SET v = -1 WHERE id = 3")
        assert engine.stats.tuples_migrated >= 1
        assert s.execute("SELECT v FROM left_part WHERE id = 3").scalar() == -1

    def test_invariants_clean_after_si_traffic(self):
        db, s = make_source_db()
        engine = LazyMigrationEngine(db, background=no_background())
        engine.submit("m", SPLIT_DDL)
        si = db.connect(isolation="snapshot")
        for i in (3, 17, 42):
            si.execute("SELECT v FROM left_part WHERE id = ?", [i])
        si.execute("SELECT COUNT(*) FROM left_part")
        # Drive the migration to completion through the 2PL path.
        s.execute("SELECT COUNT(*) FROM left_part")
        s.execute("SELECT COUNT(*) FROM right_part")
        assert engine.is_complete
        InvariantChecker(engine).check(expect_complete=True).raise_if_violated()

    def test_versions_pruned_surfaced(self):
        db, s = make_source_db()
        engine = LazyMigrationEngine(db, background=no_background())
        engine.submit("m", SPLIT_DDL)
        s.execute("SELECT COUNT(*) FROM left_part")
        s.execute("SELECT COUNT(*) FROM right_part")
        assert engine.is_complete
        for v in range(3):
            s.execute("UPDATE left_part SET v = ? WHERE id = 1", [v])
        assert engine.prune_versions() > 0
        assert engine.progress()["versions_pruned"] > 0
        row = s.execute(
            "SELECT versions_pruned FROM bullfrog_stat_migrations"
        ).rows[0]
        assert row[0] > 0


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------


class TestActivityView:
    def test_activity_shows_isolation_and_snapshot_ts(self):
        db, s = make_kv_db()
        si = db.connect(isolation="snapshot")
        si.execute("BEGIN")
        si.execute("SELECT v FROM t WHERE id = 1")
        rc = db.connect(isolation="read_committed")
        rc.execute("BEGIN")
        rc.execute("UPDATE t SET v = 11 WHERE id = 1")
        rows = s.execute(
            "SELECT isolation, snapshot_ts FROM bullfrog_stat_activity"
        ).rows
        by_isolation = {r[0]: r[1] for r in rows}
        assert by_isolation["snapshot"] is not None
        assert by_isolation["read_committed"] is None
        rc.execute("ROLLBACK")
        si.execute("COMMIT")
