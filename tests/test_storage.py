"""Tests for pages, heap tables, TIDs, and indexes."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError, UniqueViolation
from repro.storage import (
    DEFAULT_PAGE_CAPACITY,
    HashIndex,
    HeapTable,
    OrderedIndex,
    Page,
    Tid,
)


class TestTid:
    def test_ordinal_round_trip(self):
        tid = Tid(3, 17)
        assert Tid.from_ordinal(tid.ordinal(256), 256) == tid

    def test_ordering(self):
        assert Tid(0, 5) < Tid(1, 0)
        assert Tid(1, 2) < Tid(1, 3)


class TestPage:
    def test_append_and_read(self):
        page = Page(0, capacity=4)
        slot = page.append((1, "a"))
        assert page.read(slot) == (1, "a")

    def test_capacity(self):
        page = Page(0, capacity=2)
        page.append((1,))
        page.append((2,))
        assert page.is_full
        with pytest.raises(StorageError):
            page.append((3,))

    def test_delete_restore(self):
        page = Page(0, capacity=4)
        slot = page.append((1,))
        assert page.delete(slot) == (1,)
        assert page.read(slot) is None
        page.restore(slot, (1,))
        assert page.read(slot) == (1,)

    def test_double_delete_rejected(self):
        page = Page(0, capacity=4)
        slot = page.append((1,))
        page.delete(slot)
        with pytest.raises(StorageError):
            page.delete(slot)

    def test_write_to_tombstone_rejected(self):
        page = Page(0, capacity=4)
        slot = page.append((1,))
        page.delete(slot)
        with pytest.raises(StorageError):
            page.write(slot, (2,))

    def test_iter_live_skips_tombstones(self):
        page = Page(0, capacity=4)
        s0 = page.append((1,))
        s1 = page.append((2,))
        page.delete(s0)
        assert list(page.iter_live()) == [(s1, (2,))]

    def test_live_count(self):
        page = Page(0, capacity=4)
        page.append((1,))
        s = page.append((2,))
        page.delete(s)
        assert page.live_count == 1


class TestHeapTable:
    def test_insert_read(self):
        heap = HeapTable("t", page_capacity=4)
        tid = heap.insert((1, "x"))
        assert heap.read(tid) == (1, "x")
        assert len(heap) == 1

    def test_tids_stable_across_deletes(self):
        """Deletes tombstone — TIDs never move.  The BullFrog bitmap
        depends on this."""
        heap = HeapTable("t", page_capacity=2)
        tids = [heap.insert((i,)) for i in range(6)]
        heap.delete(tids[2])
        assert heap.read(tids[3]) == (3,)
        assert heap.read(tids[2]) is None
        assert heap.max_ordinal == 6  # allocation space unchanged

    def test_page_overflow(self):
        heap = HeapTable("t", page_capacity=2)
        tids = [heap.insert((i,)) for i in range(5)]
        assert tids[0].page == 0
        assert tids[2].page == 1
        assert tids[4].page == 2
        assert heap.page_count == 3

    def test_update(self):
        heap = HeapTable("t")
        tid = heap.insert((1,))
        old = heap.update(tid, (2,))
        assert old == (1,)
        assert heap.read(tid) == (2,)

    def test_update_deleted_rejected(self):
        heap = HeapTable("t")
        tid = heap.insert((1,))
        heap.delete(tid)
        with pytest.raises(StorageError):
            heap.update(tid, (2,))

    def test_restore(self):
        heap = HeapTable("t")
        tid = heap.insert((1,))
        heap.delete(tid)
        heap.restore(tid, (1,))
        assert heap.read(tid) == (1,)
        assert len(heap) == 1

    def test_scan(self):
        heap = HeapTable("t", page_capacity=2)
        tids = [heap.insert((i,)) for i in range(5)]
        heap.delete(tids[1])
        rows = [row for _tid, row in heap.scan()]
        assert rows == [(0,), (2,), (3,), (4,)]

    def test_scan_range(self):
        heap = HeapTable("t", page_capacity=4)
        for i in range(10):
            heap.insert((i,))
        got = [row[0] for _tid, row in heap.scan_range(3, 7)]
        assert got == [3, 4, 5, 6]

    def test_scan_range_with_tombstones(self):
        heap = HeapTable("t", page_capacity=4)
        tids = [heap.insert((i,)) for i in range(10)]
        heap.delete(tids[4])
        got = [row[0] for _tid, row in heap.scan_range(3, 7)]
        assert got == [3, 5, 6]

    def test_scan_range_on_page_seams(self):
        """Start and end exactly on page boundaries: [4, 8) of a
        4-per-page heap is precisely the second page."""
        heap = HeapTable("t", page_capacity=4)
        for i in range(12):
            heap.insert((i,))
        got = [row[0] for _tid, row in heap.scan_range(4, 8)]
        assert got == [4, 5, 6, 7]

    def test_scan_range_end_past_max_ordinal(self):
        heap = HeapTable("t", page_capacity=4)
        for i in range(6):
            heap.insert((i,))
        got = [row[0] for _tid, row in heap.scan_range(4, 100)]
        assert got == [4, 5]

    def test_scan_range_empty(self):
        heap = HeapTable("t", page_capacity=4)
        for i in range(6):
            heap.insert((i,))
        assert list(heap.scan_range(3, 3)) == []
        assert list(heap.scan_range(5, 2)) == []

    def test_scan_range_start_at_max_ordinal(self):
        heap = HeapTable("t", page_capacity=4)
        for i in range(8):  # exactly two full pages
            heap.insert((i,))
        assert list(heap.scan_range(8, 12)) == []

    def test_delete_restore_round_trips(self):
        """Repeated delete→restore cycles leave the tuple, live count,
        and scans exactly as before."""
        heap = HeapTable("t", page_capacity=2)
        tids = [heap.insert((i,)) for i in range(4)]
        for _ in range(3):
            old = heap.delete(tids[1])
            assert old == (1,)
            assert heap.read(tids[1]) is None
            assert len(heap) == 3
            heap.restore(tids[1], (1,))
            assert heap.read(tids[1]) == (1,)
            assert len(heap) == 4
        assert [row for _tid, row in heap.scan()] == [(0,), (1,), (2,), (3,)]

    def test_restore_live_tuple_rejected(self):
        heap = HeapTable("t")
        tid = heap.insert((1,))
        with pytest.raises(StorageError):
            heap.restore(tid, (2,))

    def test_ordinal_mapping(self):
        heap = HeapTable("t", page_capacity=4)
        tids = [heap.insert((i,)) for i in range(9)]
        assert heap.ordinal(tids[0]) == 0
        assert heap.ordinal(tids[5]) == 5
        assert heap.tid_from_ordinal(5) == tids[5]

    def test_clear(self):
        heap = HeapTable("t")
        heap.insert((1,))
        heap.clear()
        assert len(heap) == 0
        assert heap.max_ordinal == 0

    def test_concurrent_inserts_unique_tids(self):
        heap = HeapTable("t", page_capacity=8)
        collected: list[list[Tid]] = [[] for _ in range(4)]

        def worker(bucket):
            for _ in range(200):
                bucket.append(heap.insert((0,)))

        threads = [
            threading.Thread(target=worker, args=(collected[i],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        all_tids = [tid for bucket in collected for tid in bucket]
        assert len(set(all_tids)) == 800
        assert len(heap) == 800


class TestHashIndex:
    def test_insert_lookup_delete(self):
        index = HashIndex("i", "t", ("a",))
        index.insert((1,), Tid(0, 0))
        index.insert((1,), Tid(0, 1))
        assert sorted(index.lookup((1,))) == [Tid(0, 0), Tid(0, 1)]
        index.delete((1,), Tid(0, 0))
        assert index.lookup((1,)) == [Tid(0, 1)]

    def test_unique_violation(self):
        index = HashIndex("i", "t", ("a",), unique=True)
        index.insert((1,), Tid(0, 0))
        with pytest.raises(UniqueViolation):
            index.insert((1,), Tid(0, 1))

    def test_unique_allows_nulls(self):
        index = HashIndex("i", "t", ("a",), unique=True)
        index.insert((None,), Tid(0, 0))
        index.insert((None,), Tid(0, 1))  # SQL: NULLs never conflict
        assert len(index.lookup((None,))) == 2

    def test_contains(self):
        index = HashIndex("i", "t", ("a",))
        assert not index.contains((1,))
        index.insert((1,), Tid(0, 0))
        assert index.contains((1,))

    def test_delete_missing_is_noop(self):
        index = HashIndex("i", "t", ("a",))
        index.delete((9,), Tid(0, 0))  # no error

    def test_len(self):
        index = HashIndex("i", "t", ("a",))
        index.insert((1,), Tid(0, 0))
        index.insert((2,), Tid(0, 1))
        assert len(index) == 2


class TestOrderedIndex:
    def test_lookup(self):
        index = OrderedIndex("i", "t", ("a",))
        index.insert((2,), Tid(0, 0))
        index.insert((1,), Tid(0, 1))
        index.insert((2,), Tid(0, 2))
        assert sorted(index.lookup((2,))) == [Tid(0, 0), Tid(0, 2)]
        assert index.lookup((3,)) == []

    def test_unique(self):
        index = OrderedIndex("i", "t", ("a",), unique=True)
        index.insert((1,), Tid(0, 0))
        with pytest.raises(UniqueViolation):
            index.insert((1,), Tid(0, 1))

    def test_range_scan(self):
        index = OrderedIndex("i", "t", ("a",))
        for i in range(10):
            index.insert((i,), Tid(0, i))
        keys = [key[0] for key, _tid in index.range_scan((3,), (6,))]
        assert keys == [3, 4, 5, 6]

    def test_range_scan_exclusive(self):
        index = OrderedIndex("i", "t", ("a",))
        for i in range(5):
            index.insert((i,), Tid(0, i))
        keys = [
            key[0]
            for key, _tid in index.range_scan(
                (1,), (4,), low_inclusive=False, high_inclusive=False
            )
        ]
        assert keys == [2, 3]

    def test_range_scan_open_ended(self):
        index = OrderedIndex("i", "t", ("a",))
        for i in range(5):
            index.insert((i,), Tid(0, i))
        assert len(list(index.range_scan(None, None))) == 5
        assert len(list(index.range_scan((3,), None))) == 2

    def test_prefix_scan(self):
        index = OrderedIndex("i", "t", ("a", "b"))
        for a in range(3):
            for b in range(4):
                index.insert((a, b), Tid(a, b))
        got = [key for key, _tid in index.prefix_scan((1,))]
        assert got == [(1, 0), (1, 1), (1, 2), (1, 3)]

    def test_prefix_scan_empty_prefix_returns_all(self):
        index = OrderedIndex("i", "t", ("a",))
        index.insert((1,), Tid(0, 0))
        assert len(list(index.prefix_scan(()))) == 1

    def test_nulls_sort_last(self):
        index = OrderedIndex("i", "t", ("a",))
        index.insert((None,), Tid(0, 0))
        index.insert((1,), Tid(0, 1))
        keys = [key[0] for key, _tid in index.range_scan(None, None)]
        assert keys == [1, None]

    def test_delete(self):
        index = OrderedIndex("i", "t", ("a",))
        index.insert((1,), Tid(0, 0))
        index.insert((1,), Tid(0, 1))
        index.delete((1,), Tid(0, 0))
        assert index.lookup((1,)) == [Tid(0, 1)]


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=500)),
        max_size=60,
    )
)
def test_ordered_index_matches_sorted_reference(pairs):
    """OrderedIndex behaves like a sorted list of (key, tid) pairs."""
    index = OrderedIndex("i", "t", ("a",))
    reference: list[tuple[int, Tid]] = []
    for key, slot in pairs:
        tid = Tid(0, slot)
        index.insert((key,), tid)
        reference.append((key, tid))
    for probe in {key for key, _ in pairs} | {999}:
        expected = sorted(
            (tid for key, tid in reference if key == probe),
        )
        assert sorted(index.lookup((probe,))) == expected
    all_keys = [key[0] for key, _tid in index.range_scan(None, None)]
    assert all_keys == sorted(key for key, _ in pairs)


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=80))
def test_heap_scan_equals_live_set(values):
    """scan() yields exactly the non-deleted inserts, in TID order."""
    heap = HeapTable("t", page_capacity=4)
    tids = [heap.insert((v,)) for v in values]
    deleted = set()
    for position, value in enumerate(values):
        if value % 3 == 0 and position not in deleted:
            heap.delete(tids[position])
            deleted.add(position)
    expected = [
        (tids[i], (values[i],))
        for i in range(len(values))
        if i not in deleted
    ]
    assert list(heap.scan()) == expected
