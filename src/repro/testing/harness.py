"""Fault-injection harness: engine lifecycle under adversity.

Drives one lazy migration with a :class:`~repro.core.faults.FaultPlan`
attached, a pool of client threads hammering the new schema, and —
when a ``CRASH`` rule fires — the full section 3.5 recovery drill:

1. the crashed engine is discarded (its trackers are volatile memory:
   they die with the process) after its background threads are joined;
2. a fresh engine re-attaches with ``submit(resume=True)`` — the output
   tables and views already exist and keep their pre-crash contents;
3. :func:`~repro.core.recovery.rebuild_trackers` replays committed
   ``MIGRATE`` records from the surviving WAL, restoring the migrate
   bits so already-migrated data is not produced twice.

Heap data and the WAL live in the :class:`~repro.db.Database` and
survive the "crash"; uncommitted migration transactions were rolled
back as the crash unwound, which is observationally equivalent to a
REDO-only recovery not replaying them.

Client threads treat :class:`~repro.errors.TransactionAborted` as
retryable (the paper's semantics: claims were reset by the abort hooks,
the statement may simply be reissued) and :class:`SimulatedCrash` as
fatal-to-everyone — the injector's ``crashed`` event is the global
"process died" signal all clients poll.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from ..core.engine import LazyMigrationEngine, MigrationHandle
from ..core.faults import FaultInjector, FaultPlan, SimulatedCrash
from ..core.predicates import Scope
from ..core.recovery import rebuild_trackers
from ..db import Database, Session
from ..errors import TransactionAborted
from .invariants import InvariantChecker, InvariantReport

# ops(session, client_index, iteration) -> None
ClientOp = Callable[[Session, int, int], None]


class FaultHarness:
    """One migration, one fault plan, many clients, optional crashes."""

    def __init__(
        self,
        db: Database,
        migration_id: str,
        ddl: str,
        plan: FaultPlan | None = None,
        engine_kwargs: dict[str, Any] | None = None,
    ) -> None:
        self.db = db
        self.migration_id = migration_id
        self.ddl = ddl
        self.engine_kwargs = dict(engine_kwargs or {})
        self.injector = FaultInjector(plan)
        self.engine: LazyMigrationEngine | None = None
        self.handle: MigrationHandle | None = None
        self.crashes = 0
        self.client_errors: list[BaseException] = []

    # ------------------------------------------------------------------
    # Engine lifecycle
    # ------------------------------------------------------------------
    def submit(self) -> MigrationHandle:
        self.engine = self._make_engine(self.injector)
        self.handle = self.engine.submit(self.migration_id, self.ddl)
        return self.handle

    def _make_engine(self, injector: FaultInjector) -> LazyMigrationEngine:
        engine = LazyMigrationEngine(self.db, faults=injector, **self.engine_kwargs)
        # The txn manager and WAL belong to the database, not the
        # engine; point them at the same injector so txn.commit/abort
        # and wal.flush rules fire.
        self.db.txns.faults = injector
        self.db.txns.wal.faults = injector
        return engine

    @property
    def crashed(self) -> bool:
        return self.injector.crashed.is_set()

    def recover(self, plan: FaultPlan | None = None) -> int:
        """Crash aftermath: discard the dead engine, re-attach with
        ``resume=True``, replay the WAL into fresh trackers.  ``plan``
        arms the next life's injector (default: no faults — the crash
        rule already fired).  Returns granules/groups restored."""
        assert self.engine is not None, "submit() first"
        self.crashes += 1
        # Joining background threads is part of stop() now; a pass that
        # was mid-flight when the crash fired either died on the crash
        # exception or finishes rolling back before stop() returns.
        self.engine.shutdown()
        self.injector = FaultInjector(plan)
        self.engine = self._make_engine(self.injector)
        self.handle = self.engine.submit(self.migration_id, self.ddl, resume=True)
        return rebuild_trackers(self.engine)

    # ------------------------------------------------------------------
    # Client workload
    # ------------------------------------------------------------------
    def run_clients(
        self,
        ops: ClientOp,
        clients: int = 4,
        iterations: int = 50,
    ) -> bool:
        """Run ``ops`` from ``clients`` threads; returns True when a
        crash fired (all clients stopped; caller should recover())."""
        crashed_event = self.injector.crashed

        def runner(index: int) -> None:
            session = self.db.connect()
            for i in range(iterations):
                if crashed_event.is_set():
                    return
                try:
                    ops(session, index, i)
                except TransactionAborted:
                    # Retryable by design: abort hooks reset the claims.
                    if session.in_transaction:
                        session.rollback()
                    session._txn = None
                    continue
                except SimulatedCrash:
                    return  # injector.crashed already set
                except BaseException as exc:  # noqa: BLE001
                    self.client_errors.append(exc)
                    return

        threads = [
            threading.Thread(target=runner, args=(i,), name=f"fault-client-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self.client_errors:
            raise self.client_errors[0]
        return crashed_event.is_set()

    # ------------------------------------------------------------------
    # Quiesce / completion / checking
    # ------------------------------------------------------------------
    def quiesce(self) -> None:
        """Stop background work without completing the migration, so the
        invariant checker sees a stable state."""
        assert self.engine is not None
        if self.engine._background is not None:
            self.engine._background.stop()

    def drain(self) -> None:
        """Drive the migration to completion through the engine's own
        loop (full-scope simulated requests, like the background threads
        issue), retrying injected aborts until the plan is exhausted."""
        assert self.engine is not None
        for runtime in self.engine.units:
            for _attempt in range(1000):
                try:
                    self.engine.migrate_scope(runtime, Scope(full=True))
                    break
                except TransactionAborted:
                    continue
            else:  # pragma: no cover - means a runaway abort rule
                raise AssertionError(
                    f"unit {runtime.plan.unit_id} still aborting after "
                    "1000 drain attempts"
                )
            if not runtime.plan.category.uses_bitmap and not runtime.complete:
                # Hashmap completion is a *clean sweep* decision (every
                # anchor key observed migrated); the background threads
                # normally make it — at quiesce the harness can.
                if all(
                    runtime.tracker.is_migrated(key) for key in runtime.all_keys()
                ):
                    runtime.swept = True
                runtime.check_complete()
        self.engine._check_completion()

    def check(
        self,
        expect_complete: bool = False,
        structural_only: bool = False,
    ) -> InvariantReport:
        assert self.engine is not None
        return InvariantChecker(self.engine).check(
            expect_complete=expect_complete, structural_only=structural_only
        )

    def shutdown(self) -> None:
        if self.engine is not None:
            self.engine.shutdown()
        self.db.txns.faults = None
        self.db.txns.wal.faults = None


def select_clients(statements: Sequence[tuple[str, Callable[[int, int], list]]]) -> ClientOp:
    """Build a read-only client op from (sql, param_fn) pairs; the
    param_fn maps (client_index, iteration) to the parameter list.
    Read-only workloads keep value-level invariant checking exact."""

    def ops(session: Session, index: int, iteration: int) -> None:
        for sql, param_fn in statements:
            session.execute(sql, param_fn(index, iteration))

    return ops
