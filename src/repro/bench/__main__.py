"""Command-line figure runner.

Usage::

    python -m repro.bench fig3                 # quick profile
    python -m repro.bench fig7 --profile paper # scaled-down paper profile
    python -m repro.bench all --out results.txt
"""

from __future__ import annotations

import argparse
import sys

from .experiments import ALL_FIGURES, Profile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the BullFrog paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="which figure to run (or 'all')",
    )
    parser.add_argument(
        "--profile",
        choices=["quick", "paper"],
        default="quick",
        help="run sizing: quick (~seconds per run) or paper (~minutes)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also append rendered figures to this file",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="attach the observability layer to every run (metric "
        "registry + trace); implied by --json-out",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="write figures (series, summaries, registry snapshots) "
        "to this JSON file",
    )
    args = parser.parse_args(argv)

    profile = Profile.quick() if args.profile == "quick" else Profile.paper()
    if args.obs or args.json_out:
        profile.observability = True
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    results = []
    for name in names:
        print(f"[repro.bench] running {name} ({args.profile} profile)...")
        result = ALL_FIGURES[name](profile)
        results.append(result)
        rendered = result.render()
        print(rendered)
        print()
        if args.out:
            with open(args.out, "a") as fh:
                fh.write(rendered + "\n\n")
    if args.json_out:
        from .report import write_figures_json

        write_figures_json(results, args.json_out)
        print(f"[repro.bench] wrote JSON report to {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
