"""Lock manager: strict two-phase locking with deadlock handling.

Resources are hashable keys — the transaction manager uses
``("table", name)`` for table-level locks and ``("tuple", name, tid)``
for tuple-level locks.  Modes follow the classic hierarchy:

    IS < IX < S < X   (SIX omitted; the engine does not need it)

Two deadlock policies are supported:

* ``DETECT`` (default) — blocked requesters register edges in a global
  waits-for graph; a cycle check runs before sleeping and the requester
  that *closes* a cycle dies (:class:`repro.errors.DeadlockAvoided`).
  Everyone else queues, which is what makes the eager-migration
  baseline behave like the paper's: client transactions pile up behind
  the migration's exclusive table locks instead of failing fast.
* ``WAIT_DIE`` — the classic timestamp scheme (older waits, younger
  dies); cheaper, never builds the graph.

A configurable timeout bounds pathological waits under either policy.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Any, Hashable

from ..errors import DeadlockAvoided, LockTimeout


class LockMode(IntEnum):
    IS = 0
    IX = 1
    S = 2
    X = 3


class DeadlockPolicy(Enum):
    DETECT = "detect"
    WAIT_DIE = "wait-die"


# _COMPATIBLE[held][requested]
_COMPATIBLE = {
    LockMode.IS: {LockMode.IS: True, LockMode.IX: True, LockMode.S: True, LockMode.X: False},
    LockMode.IX: {LockMode.IS: True, LockMode.IX: True, LockMode.S: False, LockMode.X: False},
    LockMode.S: {LockMode.IS: True, LockMode.IX: False, LockMode.S: True, LockMode.X: False},
    LockMode.X: {LockMode.IS: False, LockMode.IX: False, LockMode.S: False, LockMode.X: False},
}

# Upgrade lattice: the mode that covers both.
_SUPREMUM = {
    (LockMode.IS, LockMode.IX): LockMode.IX,
    (LockMode.IS, LockMode.S): LockMode.S,
    (LockMode.IS, LockMode.X): LockMode.X,
    (LockMode.IX, LockMode.S): LockMode.X,  # S+IX == SIX; we round up to X
    (LockMode.IX, LockMode.X): LockMode.X,
    (LockMode.S, LockMode.X): LockMode.X,
}


def supremum(a: LockMode, b: LockMode) -> LockMode:
    if a == b:
        return a
    return _SUPREMUM.get((min(a, b), max(a, b)), max(a, b))


@dataclass
class _LockEntry:
    """State of one lockable resource.

    Beyond the live lock state, each entry accumulates wait-profiling
    counters (updated only on the contended path, under ``condition``):
    cumulative wait time, wait events, aborts attributed to this
    resource, and the holder set observed by the most recent waiter
    (blocker attribution for ``bullfrog_stat_locks``).
    """

    holders: dict[int, LockMode] = field(default_factory=dict)
    condition: threading.Condition = field(default_factory=threading.Condition)
    waiting: int = 0
    wait_count: int = 0
    wait_seconds: float = 0.0
    deadlock_aborts: int = 0
    timeouts: int = 0
    last_blockers: tuple[int, ...] = ()


def resource_class(resource: Hashable) -> str:
    """Coarse resource class for histograms: ``table``, ``tuple``, or
    ``other`` (the manager does not interpret keys beyond convention)."""
    if isinstance(resource, tuple) and resource and resource[0] in ("table", "tuple"):
        return resource[0]
    return "other"


class _WaitsForGraph:
    """Global waits-for graph for deadlock detection."""

    def __init__(self) -> None:
        self._edges: dict[int, set[int]] = {}
        self._latch = threading.Lock()

    def would_deadlock(self, waiter: int, holders: set[int]) -> bool:
        """Register waiter->holders; True if that closes a cycle (the
        edges are left registered either way — callers must clear)."""
        with self._latch:
            self._edges[waiter] = set(holders)
            # DFS from each holder looking for a path back to waiter.
            stack = list(holders)
            seen: set[int] = set()
            while stack:
                node = stack.pop()
                if node == waiter:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self._edges.get(node, ()))
            return False

    def update(self, waiter: int, holders: set[int]) -> None:
        with self._latch:
            self._edges[waiter] = set(holders)

    def clear(self, waiter: int) -> None:
        with self._latch:
            self._edges.pop(waiter, None)


class LockManager:
    """Central lock table shared by all transactions of a database."""

    def __init__(
        self,
        timeout: float = 10.0,
        policy: DeadlockPolicy = DeadlockPolicy.DETECT,
    ) -> None:
        self.timeout = timeout
        self.policy = policy
        self._entries: dict[Hashable, _LockEntry] = {}
        self._latch = threading.Lock()
        self._waits_for = _WaitsForGraph()
        # Optional observability (repro.obs.Observability), set by the
        # Database when one is attached; None keeps the uncontended
        # acquire path free of any accounting.
        self.obs: Any = None

    def _entry(self, resource: Hashable) -> _LockEntry:
        with self._latch:
            entry = self._entries.get(resource)
            if entry is None:
                entry = _LockEntry()
                self._entries[resource] = entry
            return entry

    def _peek(self, resource: Hashable) -> _LockEntry | None:
        """The entry for ``resource`` if one exists — unlike
        :meth:`_entry`, read-only probes must not materialize entries as
        a side effect (they would grow ``_entries`` unboundedly)."""
        with self._latch:
            return self._entries.get(resource)

    def _record_wait(
        self,
        entry: _LockEntry,
        resource: Hashable,
        seconds: float,
        blockers: tuple[int, ...],
        deadlock: bool = False,
        timeout: bool = False,
    ) -> None:
        """Account one finished wait (successful or aborted).  Called
        with ``entry.condition`` held; only ever reached on the
        contended path."""
        entry.wait_count += 1
        entry.wait_seconds += seconds
        entry.last_blockers = blockers
        if deadlock:
            entry.deadlock_aborts += 1
        if timeout:
            entry.timeouts += 1
        obs = self.obs
        if obs is not None and obs.active:
            obs.observe_lock_wait(resource_class(resource), seconds, blockers)
            if deadlock:
                obs.count_deadlock()
            if timeout:
                obs.count_lock_timeout()

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def acquire(self, txn_id: int, resource: Hashable, mode: LockMode) -> bool:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``txn_id``.

        Returns True if a new/upgraded lock was taken, False if the
        transaction already held a covering mode.  Raises
        DeadlockAvoided or LockTimeout.
        """
        entry = self._entry(resource)
        with entry.condition:
            held = entry.holders.get(txn_id)
            if held is not None and held >= mode and not (
                held == LockMode.IX and mode == LockMode.S
            ):
                return False
            target = mode if held is None else supremum(held, mode)
            deadline = None
            waited = False
            wait_started = 0.0
            try:
                while True:
                    conflicting = {
                        other
                        for other, other_mode in entry.holders.items()
                        if other != txn_id and not _COMPATIBLE[other_mode][target]
                    }
                    if not conflicting:
                        if waited:
                            self._record_wait(
                                entry,
                                resource,
                                time.monotonic() - wait_started,
                                entry.last_blockers,
                            )
                        entry.holders[txn_id] = target
                        return True
                    # Contended path: everything below (including the
                    # profiling) is off the uncontended fast path.
                    blockers = tuple(sorted(conflicting))
                    if not waited:
                        wait_started = time.monotonic()
                    entry.last_blockers = blockers
                    if self.policy is DeadlockPolicy.WAIT_DIE:
                        # Only wait for strictly older holders.
                        if any(other < txn_id for other in conflicting):
                            self._record_wait(
                                entry,
                                resource,
                                time.monotonic() - wait_started,
                                blockers,
                                deadlock=True,
                            )
                            raise DeadlockAvoided(
                                f"transaction {txn_id} dies waiting for lock "
                                f"on {resource!r} held by older transaction(s)"
                            )
                    else:
                        if not waited:
                            if self._waits_for.would_deadlock(txn_id, conflicting):
                                self._record_wait(
                                    entry,
                                    resource,
                                    time.monotonic() - wait_started,
                                    blockers,
                                    deadlock=True,
                                )
                                raise DeadlockAvoided(
                                    f"deadlock detected: transaction {txn_id} "
                                    f"waiting on {resource!r} closes a cycle"
                                )
                        else:
                            self._waits_for.update(txn_id, conflicting)
                    waited = True
                    if deadline is None:
                        deadline = time.monotonic() + self.timeout
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._record_wait(
                            entry,
                            resource,
                            time.monotonic() - wait_started,
                            blockers,
                            timeout=True,
                        )
                        raise LockTimeout(
                            f"transaction {txn_id} timed out waiting for "
                            f"{target.name} lock on {resource!r}"
                        )
                    entry.waiting += 1
                    try:
                        entry.condition.wait(min(remaining, 0.2))
                    finally:
                        entry.waiting -= 1
            finally:
                if waited:
                    self._waits_for.clear(txn_id)

    def release(self, txn_id: int, resource: Hashable) -> None:
        entry = self._entry(resource)
        with entry.condition:
            if entry.holders.pop(txn_id, None) is not None:
                entry.condition.notify_all()

    def release_all(self, txn_id: int, resources: list[Hashable]) -> None:
        for resource in resources:
            self.release(txn_id, resource)

    # ------------------------------------------------------------------
    # Introspection (tests / stats)
    # ------------------------------------------------------------------
    def held_mode(self, txn_id: int, resource: Hashable) -> LockMode | None:
        entry = self._peek(resource)
        if entry is None:
            return None
        with entry.condition:
            return entry.holders.get(txn_id)

    def waiter_count(self, resource: Hashable) -> int:
        entry = self._peek(resource)
        if entry is None:
            return 0
        with entry.condition:
            return entry.waiting

    def snapshot(self) -> list[dict[str, Any]]:
        """Per-resource lock state + wait-profiling counters for
        ``bullfrog_stat_locks``.

        Entries that are idle and were never contended are skipped —
        ``_entries`` never shrinks (tuple locks accumulate), so the
        snapshot stays bounded by what is interesting.
        """
        with self._latch:
            items = list(self._entries.items())
        rows: list[dict[str, Any]] = []
        for resource, entry in items:
            with entry.condition:
                holders = dict(entry.holders)
                waiting = entry.waiting
                wait_count = entry.wait_count
                wait_seconds = entry.wait_seconds
                deadlock_aborts = entry.deadlock_aborts
                timeouts = entry.timeouts
                last_blockers = entry.last_blockers
            if not holders and not waiting and not wait_count and not (
                deadlock_aborts or timeouts
            ):
                continue
            rows.append(
                {
                    "resource_class": resource_class(resource),
                    "resource": repr(resource),
                    "holders": sorted(holders),
                    "modes": [holders[t].name for t in sorted(holders)],
                    "waiters": waiting,
                    "wait_count": wait_count,
                    "wait_seconds": wait_seconds,
                    "deadlock_aborts": deadlock_aborts,
                    "timeouts": timeouts,
                    "last_blockers": list(last_blockers),
                }
            )
        return rows
