"""Multi-step migration baseline (paper section 4).

"a schema change is registered with the system ahead of time, and the
system copies data into the new schema in a background process.  Reads
are served from the old schema, while writes go to both schemas."

Mechanics (mirroring Percona/gh-ost-style tools, but trigger-based):

* shadow output tables are created immediately, but the old schema
  stays active — clients keep issuing old-schema transactions;
* a background copier walks the input tables, materializing output
  rows; a high-water mark (bitmap-shaped units) or per-group copy state
  (hashmap-shaped units) tracks progress;
* row-level hooks (triggers) on the input tables dual-write client
  changes into the shadow tables, **but only for already-copied data**
  — this is exactly why the paper observes multi-step throughput
  degrading as migration progresses: "as the migration continues, a
  larger percentage of data has been migrated ... any updates to
  migrated data must happen twice";
* when the copier catches up, the old tables are retired (the brief
  lock-and-rename switch of the real tools) and the new schema becomes
  the only one.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..db import Database, Session, build_schema
from ..errors import MigrationStateError, UnsupportedMigrationError
from ..catalog import Column, TableSchema
from ..exec.plan import ExecutionContext
from ..sql import ast_nodes as ast
from ..sql.render import render_statement
from ..types import text_type
from .classify import MigrationCategory, UnitPlan
from .migration import MigrationSpec, parse_migration
from .stats import MigrationStats

_NOT_COPIED, _COPYING, _COPIED = 0, 1, 2


class _BitmapUnitState:
    """Copy progress for 1:1 / 1:n units: a high-water mark over anchor
    tuple ordinals.  The mark is advanced *before* a chunk is copied so
    dual-writes and the copier can never both miss a change."""

    def __init__(self) -> None:
        self.hwm = 0
        self.latch = threading.Lock()

    def covered(self, ordinal: int) -> bool:
        with self.latch:
            return ordinal < self.hwm

    def advance(self, new_hwm: int) -> int:
        with self.latch:
            old = self.hwm
            self.hwm = max(self.hwm, new_hwm)
            return old


class _KeyedUnitState:
    """Copy progress for n:1 / n:n units: per-group-key states with a
    condition so dual-writers wait out an in-flight copy of their group."""

    def __init__(self) -> None:
        self.states: dict[tuple, int] = {}
        self.condition = threading.Condition()

    def begin_copy(self, key: tuple) -> bool:
        with self.condition:
            if self.states.get(key, _NOT_COPIED) != _NOT_COPIED:
                return False
            self.states[key] = _COPYING
            return True

    def finish_copy(self, key: tuple) -> None:
        with self.condition:
            self.states[key] = _COPIED
            self.condition.notify_all()

    def wait_if_copying(self, key: tuple, timeout: float = 5.0) -> int:
        deadline = time.monotonic() + timeout
        with self.condition:
            while self.states.get(key, _NOT_COPIED) == _COPYING:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self.condition.wait(remaining)
            return self.states.get(key, _NOT_COPIED)


class MultiStepMigration:
    """Shadow-table migration with background copy + dual writes."""

    def __init__(
        self,
        db: Database,
        chunk: int = 256,
        interval: float = 0.002,
        big_flip: bool = True,
    ) -> None:
        self.db = db
        self.big_flip = big_flip
        self.chunk = chunk
        self.interval = interval
        self.spec: MigrationSpec | None = None
        self.stats = MigrationStats()
        self._complete_event = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._bitmap_states: dict[str, _BitmapUnitState] = {}
        self._keyed_states: dict[str, _KeyedUnitState] = {}
        self._unit_sql: dict[str, dict[str, Any]] = {}

    # ==================================================================
    # Submission
    # ==================================================================
    def submit(self, migration_id: str, ddl: str) -> "MultiStepMigration":
        if self.spec is not None:
            raise MigrationStateError("this multi-step migration already ran")
        spec = parse_migration(migration_id, ddl, self.db.catalog)
        self.spec = spec
        self.stats.mark_started()
        self.stats.mark_background_started()  # copier starts immediately

        # Create the shadow output tables + indexes.
        for unit in spec.units:
            for output in unit.outputs:
                schema_stmt = spec.explicit_schemas.get(output.table)
                if schema_stmt is not None:
                    self.db.catalog.create_table(build_schema(schema_stmt))
                else:
                    planned = self.db.planner.plan_select(output.select)
                    name_to_type = dict(zip(planned.names, planned.types))
                    columns = tuple(
                        Column(name, name_to_type.get(name) or text_type())
                        for name in output.column_names
                    )
                    self.db.catalog.create_table(
                        TableSchema(name=output.table, columns=columns)
                    )
        for index_stmt in spec.index_statements:
            self.db.catalog.create_index(
                index_stmt.name,
                index_stmt.table,
                index_stmt.columns,
                unique=index_stmt.unique,
                ordered=True,
            )
        self.db.bump_epoch()

        for unit in spec.units:
            self._prepare_unit(unit)

        # Install the dual-write triggers, then start the copier.
        for unit in spec.units:
            self._install_hooks(unit)
        self._thread = threading.Thread(
            target=self._copier, name="multistep-copier", daemon=True
        )
        self._thread.start()
        return self

    # ------------------------------------------------------------------
    def _prepare_unit(self, unit: UnitPlan) -> None:
        sql: dict[str, Any] = {}
        if unit.category.uses_bitmap:
            self._bitmap_states[unit.unit_id] = _BitmapUnitState()
            for output in unit.outputs:
                table = self.db.catalog.table(output.table)
                unique_sets = table.schema.unique_column_sets()
                if not unique_sets:
                    raise UnsupportedMigrationError(
                        f"multi-step migration requires a unique constraint "
                        f"on output table {output.table!r} (for idempotent "
                        "copy + dual writes)"
                    )
        else:
            self._keyed_states[unit.unit_id] = _KeyedUnitState()
            # Per-key INSERT..SELECT (recompute) and DELETE statements.
            inserts, param_copies = _build_key_inserts(unit, on_conflict=True)
            sql["key_inserts"] = inserts
            sql["param_copies"] = param_copies
            sql["key_deletes"] = _build_key_deletes(unit, self.db.catalog)
        self._unit_sql[unit.unit_id] = sql

    # ==================================================================
    # Dual-write hooks (triggers)
    # ==================================================================
    def _install_hooks(self, unit: UnitPlan) -> None:
        if unit.category.uses_bitmap:
            anchor = unit.anchor
            heap = self.db.catalog.table(anchor).heap
            state = self._bitmap_states[unit.unit_id]

            def bitmap_hook(ctx, op, tid, old_row, new_row, _unit=unit, _state=state, _heap=heap):
                if self._complete_event.is_set():
                    return
                # Inserts are always dual-written (idempotent against the
                # copier via ON CONFLICT); updates/deletes dual-write only
                # for already-copied rows — uncopied rows are left for the
                # copier, which reads current data.  This gating is what
                # produces the paper's growing dual-write cost.
                if op == "INSERT" or _state.covered(_heap.ordinal(tid)):
                    self._apply_bitmap_change(ctx, _unit, op, old_row, new_row)

            self.db.add_row_hook(anchor, bitmap_hook)
        else:
            state = self._keyed_states[unit.unit_id]
            for table_name, key_columns in _keyed_hook_tables(unit):
                table = self.db.catalog.table(table_name)
                positions = [table.schema.column_index(c) for c in key_columns]

                def keyed_hook(
                    ctx, op, tid, old_row, new_row,
                    _unit=unit, _state=state, _positions=positions,
                ):
                    if self._complete_event.is_set():
                        return
                    keys = set()
                    for row in (old_row, new_row):
                        if row is not None:
                            keys.add(tuple(row[p] for p in _positions))
                    for key in keys:
                        if _state.wait_if_copying(key) == _COPIED:
                            self._recompute_group(ctx, _unit, key)

                self.db.add_row_hook(table_name, keyed_hook)

    def _apply_bitmap_change(
        self, ctx: ExecutionContext, unit: UnitPlan, op: str, old_row, new_row
    ) -> None:
        """Dual-write one anchor-row change into the shadow outputs:
        delete the outputs derived from the old version (by unique key),
        insert the outputs derived from the new version."""
        anchor_table = self.db.catalog.table(unit.anchor)
        executor = self.db.executor
        for output in unit.outputs:
            out_table = self.db.catalog.table(output.table)
            unique_set = out_table.schema.unique_column_sets()[0]
            projection = dict(zip(output.column_names, output.items))
            if old_row is not None:
                values = _project_row(anchor_table, unit, old_row, projection)
                if values is not None:
                    self._delete_by_key(ctx, out_table, unique_set, values)
            if new_row is not None:
                values = _project_row(anchor_table, unit, new_row, projection)
                if values is not None:
                    executor.insert_rows(
                        out_table, [values], ctx, on_conflict_skip=True
                    )

    def _delete_by_key(self, ctx, out_table, unique_set, values) -> None:
        key = tuple(values[c] for c in unique_set)
        index = out_table.find_index(tuple(unique_set))
        tids = index.lookup(key) if index is not None else []
        for tid in tids:
            row = out_table.heap.read(tid)
            if row is None:
                continue
            if ctx.txn is not None:
                from ..txn.locks import LockMode

                ctx.txn.lock_tuple(out_table.schema.name, tid, LockMode.X)
            row = out_table.heap.read(tid)
            if row is None:
                continue
            old = out_table.physical_delete(tid)
            if ctx.txn is not None:
                ctx.txn.record_delete(out_table, tid, old)

    def _recompute_group(self, ctx: ExecutionContext, unit: UnitPlan, key: tuple) -> None:
        """Delete + re-materialize one group's output rows inside the
        client's transaction (sees the client's own in-flight change)."""
        sql = self._unit_sql[unit.unit_id]
        session = Session(self.db, allow_retired=True)
        session.internal = True
        session._txn = ctx.txn  # join the client's transaction
        for delete_sql in sql["key_deletes"]:
            session.execute(delete_sql, key)
        params = tuple(key) * sql["param_copies"]
        for insert_sql in sql["key_inserts"]:
            session.execute(insert_sql, params)
        session._txn = None

    # ==================================================================
    # Background copier
    # ==================================================================
    def _copier(self) -> None:
        assert self.spec is not None
        session = self.db.connect(allow_retired=True)
        session.internal = True
        try:
            for unit in self.spec.units:
                if self._stop.is_set():
                    return
                if unit.category.uses_bitmap:
                    self._copy_bitmap_unit(unit, session)
                else:
                    self._copy_keyed_unit(unit, session)
            if not self._stop.is_set():
                self._switch_over()
        except Exception:
            if session.in_transaction:
                session.rollback()
            raise

    def _copy_bitmap_unit(self, unit: UnitPlan, session: Session) -> None:
        state = self._bitmap_states[unit.unit_id]
        heap = self.db.catalog.table(unit.anchor).heap
        executor = self.db.executor
        anchor_table = self.db.catalog.table(unit.anchor)
        projections = [
            (self.db.catalog.table(o.table), dict(zip(o.column_names, o.items)))
            for o in unit.outputs
        ]
        while not self._stop.is_set():
            start = state.hwm
            end = heap.max_ordinal
            if start >= end:
                return  # caught up; post-copy inserts are dual-written
            chunk_end = min(start + self.chunk, end)
            state.advance(chunk_end)  # advance BEFORE copying the chunk
            session.begin()
            try:
                copied = 0
                for _tid, row in heap.scan_range(start, chunk_end):
                    ctx = session._context()
                    for out_table, projection in projections:
                        values = _project_row(anchor_table, unit, row, projection)
                        if values is not None:
                            executor.insert_rows(
                                out_table, [values], ctx, on_conflict_skip=True
                            )
                    copied += 1
                session.commit()
                self.stats.add(granules=chunk_end - start, tuples=copied)
            except BaseException:
                if session.in_transaction:
                    session.rollback()
                raise
            if self.interval:
                time.sleep(self.interval)

    def _copy_keyed_unit(self, unit: UnitPlan, session: Session) -> None:
        state = self._keyed_states[unit.unit_id]
        sql = self._unit_sql[unit.unit_id]
        heap = self.db.catalog.table(unit.anchor).heap
        table = self.db.catalog.table(unit.anchor)
        key_columns = (
            unit.group_columns
            if unit.category is MigrationCategory.N_TO_ONE
            else unit.join_key.anchor_columns  # type: ignore[union-attr]
        )
        positions = [table.schema.column_index(c) for c in key_columns]
        while not self._stop.is_set():
            progressed = False
            start = 0
            max_ordinal = heap.max_ordinal
            while start < max_ordinal and not self._stop.is_set():
                keys: set[tuple] = set()
                for _tid, row in heap.scan_range(start, start + self.chunk):
                    keys.add(tuple(row[p] for p in positions))
                for key in keys:
                    if not state.begin_copy(key):
                        continue
                    progressed = True
                    session.begin()
                    try:
                        params = tuple(key) * sql["param_copies"]
                        produced = 0
                        for insert_sql in sql["key_inserts"]:
                            produced += session.execute(insert_sql, params).rowcount
                        session.commit()
                        self.stats.add(granules=1, tuples=produced)
                    except BaseException:
                        if session.in_transaction:
                            session.rollback()
                        state.finish_copy(key)  # avoid wedging waiters
                        raise
                    state.finish_copy(key)
                start += self.chunk
                if self.interval:
                    time.sleep(self.interval)
            if not progressed:
                return  # full pass with nothing new: unit is copied

    # ==================================================================
    # Switch-over
    # ==================================================================
    def _switch_over(self) -> None:
        """The real tools briefly lock + rename; here: retire the old
        tables and drop the triggers — new schema becomes the only one."""
        assert self.spec is not None
        for table_name in self.spec.input_tables:
            self.db.remove_row_hooks(table_name)
        if self.big_flip:
            for table_name in self.spec.input_tables:
                self.db.catalog.retire_table(table_name)
        self.db.bump_epoch()
        self.stats.mark_completed()
        self._complete_event.set()

    # ==================================================================
    # Status
    # ==================================================================
    @property
    def is_complete(self) -> bool:
        return self._complete_event.is_set()

    def await_completion(self, timeout: float | None = None) -> bool:
        return self._complete_event.wait(timeout)

    def stop(self) -> None:
        """Stop the copier and drop the dual-write hooks (teardown)."""
        self._stop.set()
        if self.spec is not None:
            for table_name in self.spec.input_tables:
                self.db.remove_row_hooks(table_name)

    def progress(self) -> dict[str, Any]:
        return {
            "migration": self.spec.migration_id if self.spec else None,
            "complete": self.is_complete,
            "granules_copied": self.stats.granules_migrated,
            "tuples_copied": self.stats.tuples_migrated,
        }


# ======================================================================
# Helpers shared with (and mirroring) the lazy engine
# ======================================================================


def _build_key_inserts(unit: UnitPlan, on_conflict: bool) -> tuple[list[str], int]:
    """Per-key INSERT..SELECT statements for hashmap-shaped units."""
    if unit.category is MigrationCategory.N_TO_ONE:
        sides = [[ast.ColumnRef(c, unit.anchor_binding) for c in unit.group_columns]]
    else:
        jk = unit.join_key
        assert jk is not None
        sides = [
            [ast.ColumnRef(c, unit.anchor_binding) for c in jk.anchor_columns],
            [ast.ColumnRef(c, jk.other_binding) for c in jk.other_columns],
        ]
    statements: list[str] = []
    for output in unit.outputs:
        select = output.select
        where = select.where
        param_index = 0
        for side in sides:
            for ref in side:
                clause = ast.BinaryOp("=", ref, ast.Param(param_index))
                param_index += 1
                where = clause if where is None else ast.BinaryOp("AND", where, clause)
        pinned = ast.Select(
            items=select.items,
            from_items=select.from_items,
            where=where,
            group_by=select.group_by,
            having=select.having,
            distinct=select.distinct,
        )
        statements.append(
            render_statement(
                ast.Insert(
                    table=output.table,
                    columns=output.column_names,
                    query=pinned,
                    on_conflict_do_nothing=on_conflict,
                )
            )
        )
    return statements, len(sides)


def _build_key_deletes(unit: UnitPlan, catalog) -> list[str]:
    """Per-key DELETE statements on the outputs of a hashmap unit: the
    output columns corresponding to the unit's anchor-side key."""
    key_columns = (
        unit.group_columns
        if unit.category is MigrationCategory.N_TO_ONE
        else unit.join_key.anchor_columns  # type: ignore[union-attr]
    )
    statements: list[str] = []
    for output in unit.outputs:
        out_key_cols: list[str] = []
        for key_column in key_columns:
            match = None
            for name, item in zip(output.column_names, output.items):
                if (
                    isinstance(item, ast.ColumnRef)
                    and item.name == key_column
                    and item.table == unit.anchor_binding
                ):
                    match = name
                    break
            if match is None:
                raise UnsupportedMigrationError(
                    f"multi-step migration needs output {output.table!r} to "
                    f"expose key column {key_column!r} for group recompute"
                )
            out_key_cols.append(match)
        where = " AND ".join(f"{c} = ?" for c in out_key_cols)
        statements.append(f"DELETE FROM {output.table} WHERE {where}")
    return statements


def _keyed_hook_tables(unit: UnitPlan) -> list[tuple[str, tuple[str, ...]]]:
    """Input tables to hook for a hashmap unit, with the columns that
    carry the group key in each."""
    if unit.category is MigrationCategory.N_TO_ONE:
        return [(unit.anchor, unit.group_columns)]
    jk = unit.join_key
    assert jk is not None
    return [
        (unit.anchor, jk.anchor_columns),
        (jk.other_table, jk.other_columns),
    ]


def _project_row(anchor_table, unit: UnitPlan, row, projection: dict) -> dict | None:
    """Evaluate a bitmap unit's output projection for one anchor row.
    Returns None when the unit's static filter rejects the row.

    Projections are compiled lazily per (unit, output) and cached on the
    function to keep hook overhead low.
    """
    from ..exec.expressions import RowLayout, compile_expr, predicate_satisfied

    cache = _project_row.__dict__.setdefault("_cache", {})
    key = (unit.unit_id, id(projection))
    compiled = cache.get(key)
    if compiled is None:
        if unit.aux is not None:
            raise UnsupportedMigrationError(
                "multi-step dual writes over FK-PK join migrations are not "
                "supported; use the lazy or eager strategy"
            )
        layout = RowLayout.for_table(
            unit.anchor_binding, anchor_table.schema.column_names
        )
        fns = {
            name: compile_expr(item, layout) for name, item in projection.items()
        }
        static = (
            compile_expr(unit.static_filter, layout)
            if unit.static_filter is not None
            else None
        )
        compiled = (fns, static)
        cache[key] = compiled
    fns, static = compiled
    if static is not None and not predicate_satisfied(static(row, ())):
        return None
    return {name: fn(row, ()) for name, fn in fns.items()}
