"""Metrics time-series history: a background sampler over the registry.

Every surface PRs 2/4/8 built — registry snapshots, ``bullfrog_stat_*``
views, Prometheus text — is *point-in-time*: cumulative counters since
process start.  An operator watching a lazy migration degrade needs
rates and trends ("QPS fell when the claim loop went hot", "lock-wait
p99 spiked 30 seconds before the stall"), and the flight recorder needs
the recent past to still exist when an incident fires.  This module
adds that dimension:

* :class:`MetricsHistory` — a daemon thread scrapes the
  :class:`~repro.obs.registry.MetricRegistry` every ``interval``
  seconds into a fixed-width ring of :class:`HistorySample` snapshots
  (counters merged per family and kept per label child, gauges, and
  histogram bucket states).  The ring is a ``deque(maxlen=capacity)``:
  appends are GIL-atomic, readers copy, nothing blocks the sampler.
* **Window queries** over the ring: :meth:`MetricsHistory.rate` (sum of
  positive adjacent deltas — a counter that *shrinks* between samples
  was reset, e.g. the overhead bench swapping registries, and the
  post-reset value counts from zero rather than poisoning the rate
  with a huge negative), :meth:`MetricsHistory.percentile` (histogram
  bucket-count deltas between the window's endpoints, linearly
  interpolated within the bucket), :meth:`MetricsHistory.summary` (the
  headline numbers ``\\top`` renders), and :meth:`MetricsHistory.rows`
  (per-sample derived rows backing the ``bullfrog_stat_history`` view
  and the ``/metrics/history`` endpoint).
* **Listeners**: the health engine registers one and is re-evaluated on
  the sampling cadence, which is what turns "rule over a history
  window" into a live breach signal without a second timer thread.

Overhead contract: the sampler is a *reader* — the write path gains
nothing.  Scraping N families at 4 Hz from a side thread costs lock
round-trips on the cells only at scrape instants; the bench
(``benchmarks/bench_obs_overhead.py``) prices the whole arrangement at
<2% attached-but-disabled and <5% with metrics + sampler live.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterable

from .registry import MetricRegistry

# Registry names the derived summary/rows read.  Nothing here is
# required to exist: a disabled bundle scrapes an empty registry and
# every derived number degrades to None/0.0.
STATEMENTS_TOTAL = "repro_statements_total"
STATEMENT_SECONDS = "repro_statement_seconds"
TXN_COMMITS = "repro_txn_commits_total"
TXN_ABORTS = "repro_txn_aborts_total"
DEADLOCKS = "repro_deadlock_aborts_total"
LOCK_TIMEOUTS = "repro_lock_timeouts_total"
SERIALIZATION_FAILURES = "repro_serialization_failures_total"
WAL_BATCHES = "repro_wal_batches_total"
LOCK_WAIT_SECONDS = "repro_lock_wait_seconds"
MIGRATION_FRACTION = "bullfrog_migration_progress_fraction"
MIGRATION_TUPLE_RATE = "bullfrog_migration_tuples_per_second"
MIGRATION_ETA = "bullfrog_migration_eta_seconds"
MIGRATION_RUNNING = "bullfrog_migration_running"
MIGRATION_TUPLES = "bullfrog_migration_tuples_migrated_total"
MIGRATION_GRANULES = "bullfrog_migration_granules_migrated_total"


def _flat(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class HistorySample:
    """One scrape: flattened scalars plus merged histogram states.

    ``counters`` maps both the bare family name (children summed — the
    shape rates want) and each labeled child (``name{k=v}``);
    ``gauges`` maps set gauges only; ``hists`` maps family name to
    ``(bounds, per_bucket_counts, count, sum)`` merged across label
    children (all children of a family share bucket bounds), with the
    final slot of ``per_bucket_counts`` being the +Inf bucket.
    ``waits`` carries the wait-class classifier totals
    (``{cls: (count, total_seconds)}``) when the sampler scrapes a full
    :class:`~repro.obs.observability.Observability` rather than a bare
    registry.
    """

    __slots__ = ("ts", "mono", "counters", "gauges", "hists", "waits")

    def __init__(
        self,
        ts: float,
        mono: float,
        counters: dict[str, float],
        gauges: dict[str, float],
        hists: dict[str, tuple],
        waits: dict[str, tuple[int, float]] | None,
    ) -> None:
        self.ts = ts
        self.mono = mono
        self.counters = counters
        self.gauges = gauges
        self.hists = hists
        self.waits = waits


def sum_positive_deltas(values: Iterable[float]) -> float:
    """Total increase across a counter series, treating any decrease as
    a reset: the post-reset reading counts from zero.  This is the
    Prometheus ``increase()`` convention and the reason the overhead
    bench's live registry swaps cannot poison a rate."""
    total = 0.0
    prev: float | None = None
    for value in values:
        if prev is None:
            prev = value
            continue
        delta = value - prev
        total += delta if delta >= 0.0 else value
        prev = value
    return total


def percentile_from_buckets(
    bounds: tuple[float, ...], bucket_counts: list[float], q: float
) -> float | None:
    """Linear-interpolated quantile from per-bucket (non-cumulative)
    counts; the final slot is the +Inf bucket, reported as the highest
    finite bound (there is nothing to interpolate toward)."""
    total = sum(bucket_counts)
    if total <= 0.0:
        return None
    target = q * total
    running = 0.0
    lo = 0.0
    for bound, count in zip(bounds, bucket_counts):
        if count > 0.0 and running + count >= target:
            return lo + (bound - lo) * (target - running) / count
        running += count
        lo = bound
    return bounds[-1]


class MetricsHistory:
    """Fixed-width ring of registry snapshots with window queries.

    ``source`` is either an
    :class:`~repro.obs.observability.Observability` (wait-class totals
    ride along in each sample) or a bare
    :class:`~repro.obs.registry.MetricRegistry`.  The sampler thread is
    started explicitly (:meth:`start`) or implicitly by
    ``Observability.attach_history``; :meth:`sample_now` scrapes
    synchronously for deterministic tests and for callers that want a
    fresh endpoint sample.
    """

    def __init__(
        self,
        source: Any,
        interval: float = 0.25,
        capacity: int = 240,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if capacity < 2:
            raise ValueError("capacity must hold at least two samples")
        if isinstance(source, MetricRegistry):
            self.registry = source
            self.obs = None
        else:
            self.obs = source
            self.registry = source.registry
        self.interval = interval
        self.capacity = capacity
        self._ring: deque[HistorySample] = deque(maxlen=capacity)
        self._listeners: list[Callable[[HistorySample], None]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._latch = threading.Lock()  # start/stop only
        self.samples_taken = 0
        self.samples_evicted = 0
        self.sampler_errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MetricsHistory":
        with self._latch:
            if self._thread is None or not self._thread.is_alive():
                self._stop = threading.Event()
                self._thread = threading.Thread(
                    target=self._run,
                    name="repro-history-sampler",
                    daemon=True,
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        with self._latch:
            thread = self._thread
            self._stop.set()
            self._thread = None
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)

    close = stop

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _run(self) -> None:
        stop = self._stop
        while not stop.wait(self.interval):
            try:
                self.sample_now()
            except Exception:
                # A scrape must never kill the sampler: a torn metric
                # family mid-registration is transient, and the next
                # tick retries.
                self.sampler_errors += 1

    def add_listener(self, listener: Callable[[HistorySample], None]) -> None:
        """Called with each new sample, on the sampler thread (or the
        caller's, for :meth:`sample_now`).  Listener errors are counted,
        never raised — the health engine hangs off this."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------
    def sample_now(self) -> HistorySample:
        sample = self._scrape()
        if len(self._ring) == self.capacity:
            self.samples_evicted += 1
        self._ring.append(sample)
        self.samples_taken += 1
        for listener in self._listeners:
            try:
                listener(sample)
            except Exception:
                self.sampler_errors += 1
        return sample

    def _scrape(self) -> HistorySample:
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        hists: dict[str, tuple] = {}
        for family in self.registry.families():
            kind = family.kind
            if kind == "counter":
                total = 0.0
                for labels, cell in family.samples():
                    value = cell.value
                    total += value
                    if labels:
                        counters[_flat(family.name, labels)] = value
                counters[family.name] = total
            elif kind == "gauge":
                for labels, cell in family.samples():
                    value = cell.value
                    if value is None:
                        continue
                    gauges[_flat(family.name, labels)] = value
            else:  # histogram: merge children (shared bounds per family)
                bounds: tuple[float, ...] | None = None
                merged: list[float] | None = None
                count = 0
                total_sum = 0.0
                for labels, cell in family.samples():
                    child_counts, child_count, child_sum = cell.state()
                    if merged is None:
                        bounds = cell.buckets
                        merged = list(child_counts)
                    else:
                        for i, c in enumerate(child_counts):
                            merged[i] += c
                    count += child_count
                    total_sum += child_sum
                if merged is not None and bounds is not None:
                    hists[family.name] = (bounds, merged, count, total_sum)
        waits = (
            self.obs.wait_events_snapshot() if self.obs is not None else None
        )
        return HistorySample(
            time.time(), time.perf_counter(), counters, gauges, hists, waits
        )

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------
    def samples(self, window: float | None = None) -> list[HistorySample]:
        """Retained samples, oldest first; ``window`` keeps only those
        within the trailing ``window`` seconds of the newest sample
        (endpoints inclusive)."""
        out = list(self._ring)
        if window is None or not out:
            return out
        cutoff = out[-1].mono - window - 1e-9
        return [s for s in out if s.mono >= cutoff]

    def latest(self) -> HistorySample | None:
        try:
            return self._ring[-1]
        except IndexError:
            return None

    def value(self, name: str) -> float | None:
        """The newest scraped value of a counter or gauge (flat key)."""
        latest = self.latest()
        if latest is None:
            return None
        if name in latest.gauges:
            return latest.gauges[name]
        return latest.counters.get(name)

    def rate(self, name: str, window: float | None = None) -> float | None:
        """Per-second increase of counter ``name`` over the window,
        reset-aware (see :func:`sum_positive_deltas`).  ``None`` until
        two samples exist or when no time has passed."""
        samples = self.samples(window)
        if len(samples) < 2:
            return None
        dt = samples[-1].mono - samples[0].mono
        if dt <= 0.0:
            return None
        increase = sum_positive_deltas(
            s.counters.get(name, 0.0) for s in samples
        )
        return increase / dt

    def delta(self, name: str, window: float | None = None) -> float | None:
        """Reset-aware total increase of counter ``name`` over the
        window (the numerator of :meth:`rate`)."""
        samples = self.samples(window)
        if len(samples) < 2:
            return None
        return sum_positive_deltas(s.counters.get(name, 0.0) for s in samples)

    def percentile(
        self, name: str, q: float, window: float | None = None
    ) -> float | None:
        """Quantile of histogram ``name`` over the window: bucket-count
        deltas between the window's endpoint samples, interpolated
        within the landing bucket.  A shrinking bucket count means the
        registry was reset mid-window; the newest sample's cumulative
        state stands in alone (everything it holds arrived after the
        reset)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        samples = self.samples(window)
        newest = None
        for sample in reversed(samples):
            if name in sample.hists:
                newest = sample
                break
        if newest is None:
            return None
        oldest = None
        for sample in samples:
            if sample is newest:
                break
            if name in sample.hists:
                oldest = sample
                break
        bounds, new_counts, _, _ = newest.hists[name]
        if oldest is None:
            return percentile_from_buckets(bounds, list(new_counts), q)
        _, old_counts, _, _ = oldest.hists[name]
        if len(old_counts) != len(new_counts):
            return percentile_from_buckets(bounds, list(new_counts), q)
        deltas = [n - o for n, o in zip(new_counts, old_counts)]
        if any(d < 0 for d in deltas):  # reset mid-window
            deltas = list(new_counts)
        return percentile_from_buckets(bounds, deltas, q)

    def wait_rates(
        self, window: float | None = None
    ) -> dict[str, float]:
        """Wait-class milliseconds accrued per second of wall time over
        the window (empty when scraping a bare registry)."""
        samples = [s for s in self.samples(window) if s.waits is not None]
        if len(samples) < 2:
            return {}
        dt = samples[-1].mono - samples[0].mono
        if dt <= 0.0:
            return {}
        classes: set[str] = set()
        for s in (samples[0], samples[-1]):
            classes.update(s.waits)  # type: ignore[arg-type]
        out: dict[str, float] = {}
        for cls in classes:
            seconds = sum_positive_deltas(
                (s.waits or {}).get(cls, (0, 0.0))[1] for s in samples
            )
            out[cls] = seconds * 1e3 / dt
        return out

    # ------------------------------------------------------------------
    # Derived surfaces
    # ------------------------------------------------------------------
    def summary(self, window: float = 5.0) -> dict[str, Any]:
        """The headline numbers ``\\top`` renders and the health rules
        read: throughput rates, latency percentiles, wait-class
        breakdown, and migration progress over the trailing window."""
        samples = self.samples(window)
        latest = samples[-1] if samples else None
        span = (
            samples[-1].mono - samples[0].mono if len(samples) >= 2 else 0.0
        )

        def ms(value: float | None) -> float | None:
            return None if value is None else value * 1e3

        gauges = latest.gauges if latest is not None else {}
        return {
            "ts": latest.ts if latest is not None else None,
            "window_seconds": span,
            "samples": len(samples),
            "interval": self.interval,
            "qps": self.rate(STATEMENTS_TOTAL, window),
            "commits_per_sec": self.rate(TXN_COMMITS, window),
            "aborts_per_sec": self.rate(TXN_ABORTS, window),
            "deadlocks_per_sec": self.rate(DEADLOCKS, window),
            "serialization_failures_per_sec": self.rate(
                SERIALIZATION_FAILURES, window
            ),
            "wal_batches_per_sec": self.rate(WAL_BATCHES, window),
            "p50_ms": ms(self.percentile(STATEMENT_SECONDS, 0.50, window)),
            "p95_ms": ms(self.percentile(STATEMENT_SECONDS, 0.95, window)),
            "p99_ms": ms(self.percentile(STATEMENT_SECONDS, 0.99, window)),
            "lock_wait_p99_ms": ms(
                self.percentile(LOCK_WAIT_SECONDS, 0.99, window)
            ),
            "wait_ms_per_sec": self.wait_rates(window),
            "migration": {
                "running": gauges.get(MIGRATION_RUNNING),
                "fraction": gauges.get(MIGRATION_FRACTION),
                "tuples_per_sec": gauges.get(MIGRATION_TUPLE_RATE),
                "eta_seconds": gauges.get(MIGRATION_ETA),
                "tuples_rate_window": self.rate(MIGRATION_TUPLES, window),
                "granules_rate_window": self.rate(MIGRATION_GRANULES, window),
            },
        }

    def rows(self, window: float | None = None) -> list[dict[str, Any]]:
        """One derived row per adjacent sample pair, oldest first — the
        shape behind ``bullfrog_stat_history`` and
        ``/metrics/history``.  Rates are pairwise (this row's sample vs
        the previous), percentiles interpolate the pair's bucket
        deltas, and migration numbers are the row's gauge readings."""
        samples = self.samples(window)
        rows: list[dict[str, Any]] = []
        for prev, cur in zip(samples, samples[1:]):
            dt = cur.mono - prev.mono
            if dt <= 0.0:
                continue

            def crate(name: str) -> float:
                new = cur.counters.get(name, 0.0)
                delta = new - prev.counters.get(name, 0.0)
                return (delta if delta >= 0.0 else new) / dt

            def pair_pct(name: str, q: float) -> float | None:
                pair = cur.hists.get(name)
                if pair is None:
                    return None
                bounds, new_counts, _, _ = pair
                old = prev.hists.get(name)
                if old is None or len(old[1]) != len(new_counts):
                    deltas = list(new_counts)
                else:
                    deltas = [n - o for n, o in zip(new_counts, old[1])]
                    if any(d < 0 for d in deltas):
                        deltas = list(new_counts)
                seconds = percentile_from_buckets(bounds, deltas, q)
                return None if seconds is None else seconds * 1e3

            waits: dict[str, float] = {}
            if cur.waits is not None and prev.waits is not None:
                for cls, (_, total) in cur.waits.items():
                    delta = total - prev.waits.get(cls, (0, 0.0))[1]
                    waits[cls] = (delta if delta >= 0.0 else total) * 1e3 / dt
            rows.append(
                {
                    "ts": cur.ts,
                    "dt_seconds": dt,
                    "qps": crate(STATEMENTS_TOTAL),
                    "commits_per_sec": crate(TXN_COMMITS),
                    "aborts_per_sec": crate(TXN_ABORTS),
                    "deadlocks_per_sec": crate(DEADLOCKS),
                    "wal_batches_per_sec": crate(WAL_BATCHES),
                    "p50_ms": pair_pct(STATEMENT_SECONDS, 0.50),
                    "p95_ms": pair_pct(STATEMENT_SECONDS, 0.95),
                    "p99_ms": pair_pct(STATEMENT_SECONDS, 0.99),
                    "lock_wait_p99_ms": pair_pct(LOCK_WAIT_SECONDS, 0.99),
                    "lock_wait_ms_per_sec": waits.get("lock"),
                    "migration_wait_ms_per_sec": waits.get("migration"),
                    "migration_fraction": cur.gauges.get(MIGRATION_FRACTION),
                    "migration_tuples_per_sec": cur.gauges.get(
                        MIGRATION_TUPLE_RATE
                    ),
                    "migration_eta_seconds": cur.gauges.get(MIGRATION_ETA),
                }
            )
        return rows

    def to_json(self, window: float | None = None) -> dict[str, Any]:
        """The ``/metrics/history`` document: config, derived rows, and
        the trailing-window summary."""
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "samples_taken": self.samples_taken,
            "samples_evicted": self.samples_evicted,
            "sampler_errors": self.sampler_errors,
            "running": self.running,
            "rows": self.rows(window),
            "summary": self.summary(window if window is not None else 5.0),
        }


__all__ = [
    "HistorySample",
    "MetricsHistory",
    "percentile_from_buckets",
    "sum_positive_deltas",
]
