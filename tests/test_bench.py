"""Tests for the benchmark harness: metrics, driver, report, scenarios."""

import statistics
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench import (
    DriverConfig,
    ExperimentConfig,
    LatencyRecorder,
    LatencySummary,
    ThroughputSeries,
    WorkloadDriver,
    cdf_points,
    percentile,
    render_cdf,
    render_timeseries,
    run_migration_experiment,
    summary_rows,
)
from repro.bench.report import downsample
from repro.core import Strategy
from repro.tpcc import ScaleConfig


class TestMetrics:
    def test_throughput_buckets(self):
        series = ThroughputSeries(bucket_seconds=1.0)
        for t in (0.1, 0.5, 1.2, 2.9, 2.95):
            series.record(t)
        assert series.series() == [(0.0, 2.0), (1.0, 1.0), (2.0, 2.0)]

    def test_throughput_dense_zeros(self):
        series = ThroughputSeries(bucket_seconds=1.0)
        series.record(0.1)
        series.record(3.2)
        assert series.series() == [(0.0, 1.0), (1.0, 0.0), (2.0, 0.0), (3.0, 1.0)]

    def test_throughput_fractional_buckets(self):
        series = ThroughputSeries(bucket_seconds=0.5)
        series.record(0.1)
        series.record(0.2)
        assert series.series()[0] == (0.0, 4.0)  # 2 txns / 0.5s

    def test_throughput_zero_duration(self):
        # Regression: duration=0.0 used to fall through to max() over an
        # empty bucket dict and raise ValueError.
        series = ThroughputSeries(bucket_seconds=1.0)
        assert series.series(duration=0.0) == [(0.0, 0.0)]

    def test_throughput_empty_with_duration(self):
        series = ThroughputSeries(bucket_seconds=1.0)
        assert series.series(duration=2.5) == [
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
        ]

    def test_throughput_includes_buckets_past_duration(self):
        # Regression: completions recorded after the nominal duration
        # (in-flight work draining past the run window) were silently
        # dropped from the series.
        series = ThroughputSeries(bucket_seconds=1.0)
        series.record(0.5)
        series.record(5.2)
        result = series.series(duration=2.0)
        assert result[0] == (0.0, 1.0)
        assert result[-1] == (5.0, 1.0)
        assert len(result) == 6

    def test_latency_recorder_filters(self):
        recorder = LatencyRecorder()
        recorder.record(0.5, 0.010, "new_order")
        recorder.record(1.5, 0.020, "payment")
        recorder.record(2.5, 0.030, "new_order")
        assert len(recorder) == 3
        assert len(recorder.samples("new_order")) == 2
        assert len(recorder.samples("new_order", after=1.0)) == 1

    def test_percentile(self):
        values = sorted(float(i) for i in range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.0, abs=1)
        assert percentile(values, 99) == pytest.approx(99.0, abs=1)
        assert percentile([], 50) != percentile([], 50)  # NaN

    def test_percentile_edges(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 100) == 7.0
        values = [1.0, 2.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, -5) == 1.0  # clamps below
        assert percentile(values, 100) == 4.0
        assert percentile(values, 150) == 4.0  # clamps above
        assert percentile(values, 50) == 2.0
        assert percentile(values, 75) == 3.0  # interpolates between 2 and 4

    @given(
        values=st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=2,
            max_size=60,
        ),
        k=st.integers(min_value=1, max_value=99),
    )
    def test_percentile_matches_statistics_quantiles(self, values, k):
        # The docstring's contract: for integer percentiles 1..99 the
        # inclusive (n-1)-rank interpolation agrees with the stdlib's
        # method="inclusive" quantile cut points.
        values.sort()
        expected = statistics.quantiles(values, n=100, method="inclusive")
        assert percentile(values, k) == pytest.approx(
            expected[k - 1], rel=1e-9, abs=1e-9
        )

    def test_cdf_points_monotonic(self):
        points = cdf_points([5.0, 1.0, 3.0, 2.0, 4.0], points=10)
        latencies = [p[0] for p in points]
        fractions = [p[1] for p in points]
        assert latencies == sorted(latencies)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_latency_summary(self):
        summary = LatencySummary.of([0.001, 0.002, 0.003, 0.004, 1.0])
        assert summary.count == 5
        assert summary.max == 1.0
        assert summary.p50 == 0.003

    def test_latency_summary_empty(self):
        summary = LatencySummary.of([])
        assert summary.count == 0


class _FakeClient:
    def __init__(self, latency=0.0):
        self.latency = latency
        self.calls = 0

    def run_random(self):
        self.calls += 1
        if self.latency:
            time.sleep(self.latency)
        return "fake", True


class TestDriver:
    def test_closed_loop_counts(self):
        driver = WorkloadDriver(
            lambda i: _FakeClient(latency=0.001),
            DriverConfig(duration=0.5, rate=None, workers=2),
        )
        result = driver.run()
        assert result.completed > 50
        assert result.failed == 0
        assert result.overall_tps > 100

    def test_open_loop_respects_rate(self):
        driver = WorkloadDriver(
            lambda i: _FakeClient(),
            DriverConfig(duration=1.0, rate=100, workers=2),
        )
        result = driver.run()
        # Scheduled arrivals: exactly rate x duration (give slack for
        # shutdown timing).
        assert 80 <= result.completed <= 101

    def test_open_loop_queueing_latency(self):
        """When service time exceeds the arrival interval, latency grows
        (the queue builds) — the saturation regime of the figures."""
        driver = WorkloadDriver(
            lambda i: _FakeClient(latency=0.02),
            DriverConfig(duration=1.0, rate=200, workers=1),
        )
        result = driver.run()
        samples = [s.latency for s in result.latencies.samples()]
        assert samples, "no samples recorded"
        # early requests fast, late requests queued
        assert max(samples) > 0.1

    def test_events_marked(self):
        driver = WorkloadDriver(
            lambda i: _FakeClient(),
            DriverConfig(duration=0.3, rate=50, workers=1),
        )

        def on_start(drv):
            drv.mark("hello")

        result = driver.run(on_start=on_start)
        assert any(label == "hello" for _t, label in result.events)

    def test_errors_recorded_not_fatal(self):
        class Exploding:
            def run_random(self):
                raise ValueError("kaboom")

        driver = WorkloadDriver(
            lambda i: Exploding(),
            DriverConfig(duration=0.2, rate=50, workers=1),
        )
        result = driver.run()
        assert result.errors.get("ValueError", 0) > 0
        assert result.completed == 0


class TestReport:
    def test_render_timeseries(self):
        text = render_timeseries(
            {"sys-a": [(0.0, 10.0), (1.0, 20.0)], "sys-b": [(0.0, 5.0)]},
            {"sys-a": [(0.5, "migration start")]},
            title="demo",
        )
        assert "demo" in text
        assert "A = sys-a" in text
        assert "migration start" in text

    def test_render_timeseries_empty(self):
        assert "(no data)" in render_timeseries({"x": []})

    def test_render_cdf(self):
        text = render_cdf({"sys": [0.001, 0.002, 0.5]})
        assert "sys" in text
        assert "ms" in text

    def test_summary_rows(self):
        rows = summary_rows({"a": [0.001, 0.002]})
        assert rows[0]["system"] == "a"
        assert rows[0]["count"] == 2

    def test_downsample(self):
        series = [(float(i), float(i)) for i in range(100)]
        small = downsample(series, buckets=10)
        assert len(small) <= 12
        assert small[0][0] == 0.0


@pytest.mark.slow
class TestExperimentIntegration:
    def test_quick_lazy_experiment(self):
        config = ExperimentConfig(
            scenario="split",
            scale=ScaleConfig.small(),
            strategy=Strategy.LAZY,
            duration=3.0,
            migrate_at=1.0,
            workers=2,
            background_delay=0.5,
            rate_fraction=0.5,
        )
        result = run_migration_experiment(config)
        assert result.driver.completed > 0
        assert result.migration_started_at is not None
        assert result.migration_started_at == pytest.approx(1.0, abs=0.5)
        assert result.migration_completed_at is not None
        assert result.latencies("new_order")
        assert result.migration_stats.get("complete") is True

    def test_quick_eager_experiment(self):
        config = ExperimentConfig(
            scenario="split",
            scale=ScaleConfig.small(),
            strategy=Strategy.EAGER,
            duration=3.0,
            migrate_at=1.0,
            workers=2,
            rate_fraction=0.5,
        )
        result = run_migration_experiment(config)
        assert result.migration_completed_at is not None
        assert result.driver.failed == 0
