"""Figure 10: skewed data access (hot-set sweep, lock contention)."""

from repro.bench.experiments import fig10_contention


def test_fig10_contention(benchmark, profile, record_figure):
    result = benchmark.pedantic(
        fig10_contention,
        kwargs={"profile": profile, "hot_fractions": (1.0, 0.05)},
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert len(result.lines) == 2
