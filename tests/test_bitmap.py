"""Tests for the migration bitmap (paper section 3.3, Algorithm 2)."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Claim, MigrationBitmap
from repro.core.bitmap import IN_PROGRESS, MIGRATED, NOT_STARTED


class TestStates:
    def test_initial_state(self):
        bitmap = MigrationBitmap(8)
        assert all(bitmap.state(i) == NOT_STARTED for i in range(8))
        assert bitmap.migrated_count == 0
        assert not bitmap.all_migrated

    def test_claim_sets_lock_bit(self):
        bitmap = MigrationBitmap(8)
        assert bitmap.try_begin(3) is Claim.MIGRATE
        assert bitmap.state(3) == IN_PROGRESS
        assert bitmap.is_in_progress(3)
        assert not bitmap.is_migrated(3)

    def test_second_claim_skips(self):
        bitmap = MigrationBitmap(8)
        bitmap.try_begin(3)
        assert bitmap.try_begin(3) is Claim.SKIP

    def test_migrated_returns_done(self):
        bitmap = MigrationBitmap(8)
        bitmap.try_begin(3)
        bitmap.mark_migrated([3])
        assert bitmap.state(3) == MIGRATED
        assert bitmap.try_begin(3) is Claim.DONE

    def test_one_one_never_occurs(self):
        """[1 1] must never occur: marking migrated clears the lock bit."""
        bitmap = MigrationBitmap(8)
        bitmap.try_begin(0)
        bitmap.mark_migrated([0])
        assert bitmap.state(0) == MIGRATED  # not IN_PROGRESS | MIGRATED

    def test_reset_after_abort(self):
        bitmap = MigrationBitmap(8)
        bitmap.try_begin(5)
        bitmap.reset([5])
        assert bitmap.state(5) == NOT_STARTED
        assert bitmap.try_begin(5) is Claim.MIGRATE  # re-claimable

    def test_reset_does_not_clear_migrated(self):
        bitmap = MigrationBitmap(8)
        bitmap.try_begin(5)
        bitmap.mark_migrated([5])
        bitmap.reset([5])
        assert bitmap.is_migrated(5)

    def test_mark_migrated_idempotent(self):
        bitmap = MigrationBitmap(8)
        bitmap.try_begin(0)
        bitmap.mark_migrated([0])
        bitmap.mark_migrated([0])
        assert bitmap.migrated_count == 1

    def test_bounds_checked(self):
        bitmap = MigrationBitmap(4)
        with pytest.raises(IndexError):
            bitmap.try_begin(4)
        with pytest.raises(IndexError):
            bitmap.state(-1)

    def test_all_migrated(self):
        bitmap = MigrationBitmap(4)
        for i in range(4):
            bitmap.try_begin(i)
        bitmap.mark_migrated(range(4))
        assert bitmap.all_migrated

    def test_zero_size(self):
        bitmap = MigrationBitmap(0)
        assert bitmap.all_migrated  # vacuously complete
        assert list(bitmap.iter_unmigrated()) == []

    def test_iter_unmigrated(self):
        bitmap = MigrationBitmap(6)
        bitmap.try_begin(1)
        bitmap.mark_migrated([1])
        bitmap.try_begin(3)  # in-progress still counts as unmigrated
        assert list(bitmap.iter_unmigrated()) == [0, 2, 3, 4, 5]
        assert list(bitmap.iter_unmigrated(start=2, limit=2)) == [2, 3]

    def test_adjacent_granules_do_not_interfere(self):
        """Four granules share each byte: flipping one must not disturb
        its neighbours."""
        bitmap = MigrationBitmap(8)
        bitmap.try_begin(1)
        bitmap.mark_migrated([1])
        bitmap.try_begin(2)
        assert bitmap.state(0) == NOT_STARTED
        assert bitmap.state(1) == MIGRATED
        assert bitmap.state(2) == IN_PROGRESS
        assert bitmap.state(3) == NOT_STARTED


class TestConcurrency:
    @pytest.mark.parametrize("partitions", [1, 4, 16])
    def test_exactly_once_claims(self, partitions):
        """Every granule is claimed by exactly one of many racing
        workers — the paper's exactly-once guarantee at the bitmap level."""
        size = 2000
        bitmap = MigrationBitmap(size, partitions=partitions)
        claims = [[] for _ in range(8)]

        def worker(bucket):
            for ordinal in range(size):
                if bitmap.try_begin(ordinal) is Claim.MIGRATE:
                    bucket.append(ordinal)

        threads = [
            threading.Thread(target=worker, args=(claims[i],))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sorted(o for bucket in claims for o in bucket)
        assert total == list(range(size))  # each exactly once

    def test_concurrent_mark_and_reset(self):
        bitmap = MigrationBitmap(1000, partitions=8)
        for i in range(1000):
            bitmap.try_begin(i)

        def marker():
            bitmap.mark_migrated(range(0, 1000, 2))

        def resetter():
            bitmap.reset(range(1, 1000, 2))

        t1, t2 = threading.Thread(target=marker), threading.Thread(target=resetter)
        t1.start(); t2.start(); t1.join(); t2.join()
        assert bitmap.migrated_count == 500
        assert all(bitmap.state(i) == MIGRATED for i in range(0, 1000, 2))
        assert all(bitmap.state(i) == NOT_STARTED for i in range(1, 1000, 2))


@settings(max_examples=60)
@given(
    size=st.integers(min_value=1, max_value=40),
    operations=st.lists(
        st.tuples(
            st.sampled_from(["claim", "mark", "reset"]),
            st.integers(min_value=0, max_value=39),
        ),
        max_size=60,
    ),
)
def test_bitmap_matches_reference_model(size, operations):
    """Single-threaded model check: the bitmap behaves like a dict of
    three-state values under arbitrary claim/mark/reset sequences."""
    bitmap = MigrationBitmap(size)
    model: dict[int, str] = {}
    for op, raw in operations:
        ordinal = raw % size
        state = model.get(ordinal, "new")
        if op == "claim":
            outcome = bitmap.try_begin(ordinal)
            if state == "new":
                assert outcome is Claim.MIGRATE
                model[ordinal] = "claimed"
            elif state == "claimed":
                assert outcome is Claim.SKIP
            else:
                assert outcome is Claim.DONE
        elif op == "mark":
            if state == "claimed":
                bitmap.mark_migrated([ordinal])
                model[ordinal] = "done"
        else:  # reset
            bitmap.reset([ordinal])
            if state == "claimed":
                model[ordinal] = "new"
    migrated = sum(1 for v in model.values() if v == "done")
    assert bitmap.migrated_count == migrated
