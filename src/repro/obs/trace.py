"""Structured tracing: a ring-buffer log of typed lifecycle events.

BullFrog's claims are temporal — lazy migration cost folded into
foreground latency, background passes racing the workload — so the
interesting question is always *when* things happened relative to each
other.  :class:`TraceLog` records **complete spans** (name + start +
duration, Chrome ``ph: "X"``) and **instant events** (``ph: "i"``) from
any thread, bounded by a ring buffer that evicts the oldest events.

Two export shapes:

* :meth:`TraceLog.to_chrome` — the Chrome ``trace_event`` JSON object
  (load the file in ``about:tracing`` or https://ui.perfetto.dev);
  thread-name metadata events are synthesized so foreground workers and
  ``bullfrog-background-*`` threads land on labelled rows, making the
  overlap between foreground migration spans and background passes
  directly visible.
* :meth:`TraceLog.events` — the plain event list, for programmatic
  assertions and the text event log.

Timestamps are microseconds since the log's creation (Chrome's unit),
taken from ``time.perf_counter`` — monotonic, comparable across
threads in one process.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Iterator


class TraceEvent:
    """One trace record.  ``ph`` is the Chrome phase: ``"X"`` complete
    span, ``"i"`` instant."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "tid", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        dur: float | None,
        tid: int,
        args: dict[str, Any] | None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.tid = tid
        self.args = args

    def to_chrome(self, pid: int = 1) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat or "repro",
            "ph": self.ph,
            "ts": self.ts,
            "pid": pid,
            "tid": self.tid,
        }
        if self.ph == "X":
            out["dur"] = self.dur if self.dur is not None else 0.0
        if self.ph == "i":
            out["s"] = "t"  # instant scope: thread
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceEvent({self.name!r}, ph={self.ph!r}, ts={self.ts:.1f}, "
            f"dur={self.dur}, tid={self.tid})"
        )


class _Span:
    """Context manager recording one complete event on exit."""

    __slots__ = ("_log", "name", "cat", "args", "_start")

    def __init__(self, log: "TraceLog", name: str, cat: str, args: dict | None):
        self._log = log
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._start = self._log.now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            args = dict(self.args or ())
            args["error"] = exc_type.__name__
            self.args = args
        self._log.complete(self.name, self._start, cat=self.cat, args=self.args)
        return False


class TraceLog:
    """Thread-safe bounded event log.

    Appends are **latch-free**: a bounded ``deque.append`` is atomic
    under the GIL, so the hot path is one append plus one integer bump
    (eviction is implicit in ``maxlen`` and accounted by comparing the
    append count against the live length).  Thread names are resolved
    once per thread, not per event — ``threading.current_thread()`` is
    an order of magnitude more expensive than the append itself.
    Readers copy the deque in one C call (no Python-level iteration),
    so snapshots are consistent without stopping writers.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._latch = threading.Lock()  # serializes clear(), not appends
        self._epoch = time.perf_counter()
        self._thread_names: dict[int, str] = {}
        self._appends = 0

    # -- clock ---------------------------------------------------------
    def now_us(self) -> float:
        """Microseconds since the log's epoch."""
        return (time.perf_counter() - self._epoch) * 1e6

    # -- emission ------------------------------------------------------
    def _append(self, event: TraceEvent) -> None:
        self._events.append(event)
        self._appends += 1
        if event.tid not in self._thread_names:
            self._thread_names[event.tid] = threading.current_thread().name

    def instant(
        self, name: str, cat: str = "", args: dict[str, Any] | None = None
    ) -> None:
        self._append(
            TraceEvent(name, cat, "i", self.now_us(), None, threading.get_ident(), args)
        )

    def complete(
        self,
        name: str,
        start_us: float,
        cat: str = "",
        args: dict[str, Any] | None = None,
        end_us: float | None = None,
    ) -> None:
        """Record a finished span that began at ``start_us`` (from
        :meth:`now_us`)."""
        end = end_us if end_us is not None else self.now_us()
        self._append(
            TraceEvent(
                name,
                cat,
                "X",
                start_us,
                max(0.0, end - start_us),
                threading.get_ident(),
                args,
            )
        )

    def span(
        self, name: str, cat: str = "", args: dict[str, Any] | None = None
    ) -> _Span:
        """``with trace.span("migrate.wip", args={...}): ...``"""
        return _Span(self, name, cat, args)

    # -- reading -------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """Point-in-time snapshot, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring so far."""
        return max(0, self._appends - len(self._events))

    def clear(self) -> None:
        with self._latch:
            self._events.clear()
            self._appends = 0

    def spans(self, name: str | None = None) -> Iterator[TraceEvent]:
        for event in self.events():
            if event.ph == "X" and (name is None or event.name == name):
                yield event

    def events_for_trace(self, trace_id: int) -> list[TraceEvent]:
        """Every event whose args carry the given ``trace`` id — the
        request tree one client statement produced, across threads."""
        return [
            event
            for event in self.events()
            if event.args is not None and event.args.get("trace") == trace_id
        ]

    # -- export --------------------------------------------------------
    def to_chrome(self, pid: int = 1) -> dict[str, Any]:
        """The Chrome ``trace_event`` object (``json.dump`` it to a file
        and open in ``about:tracing`` / Perfetto)."""
        events = list(self._events)
        names = dict(self._thread_names)
        trace_events: list[dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
            for tid, tname in sorted(names.items())
        ]
        trace_events.extend(event.to_chrome(pid) for event in events)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def to_chrome_json(self, pid: int = 1) -> str:
        return json.dumps(self.to_chrome(pid), default=str)

    def to_event_log(self) -> str:
        """Plain-text event log, one line per event, oldest first."""
        lines = []
        for event in self.events():
            dur = f" dur={event.dur / 1000:.3f}ms" if event.ph == "X" else ""
            args = f" {event.args}" if event.args else ""
            lines.append(
                f"{event.ts / 1000:12.3f}ms [{event.tid}] "
                f"{event.ph} {event.name}{dur}{args}"
            )
        return "\n".join(lines)


def merge_chrome(
    documents: list[dict[str, Any]],
    names: list[str] | None = None,
) -> dict[str, Any]:
    """Stitch multiple :meth:`TraceLog.to_chrome` documents into one
    Perfetto-loadable trace, one process row per document.

    The distributed story: a client process and a ``bullfrogd`` process
    each keep their own :class:`TraceLog`; export both, merge, and the
    shared ``trace`` ids in span args tie a request's client-side span
    to the server-loop and engine spans it caused.  (In-process tests
    can instead hand the client the server's log and skip the merge.)
    """
    merged: list[dict[str, Any]] = []
    for index, document in enumerate(documents):
        pid = index + 1
        merged.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": names[index]
                    if names is not None and index < len(names)
                    else f"process-{pid}"
                },
            }
        )
        for event in document.get("traceEvents", ()):
            reassigned = dict(event)
            reassigned["pid"] = pid
            merged.append(reassigned)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


__all__ = ["TraceEvent", "TraceLog", "merge_chrome"]
