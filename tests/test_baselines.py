"""Tests for the eager and multi-step baselines (paper section 4)."""

import threading
import time

import pytest

from repro import Database
from repro.core import (
    EagerMigration,
    MigrationController,
    MultiStepMigration,
    Strategy,
)
from repro.errors import MigrationStateError, SchemaVersionError


def make_db(rows=40):
    db = Database()
    s = db.connect()
    s.execute("CREATE TABLE src (id INT PRIMARY KEY, grp INT, v INT)")
    for i in range(rows):
        s.execute("INSERT INTO src VALUES (?, ?, ?)", [i, i % 4, i])
    return db, s


SPLIT_DDL = """
CREATE TABLE a (id INT PRIMARY KEY, v INT);
INSERT INTO a (id, v) SELECT id, v FROM src;
CREATE TABLE b (id INT PRIMARY KEY, grp INT);
INSERT INTO b (id, grp) SELECT id, grp FROM src;
"""

AGG_DDL = """
CREATE TABLE t (grp INT PRIMARY KEY, total INT);
INSERT INTO t (grp, total) SELECT grp, SUM(v) FROM src GROUP BY grp;
"""


class TestEager:
    def test_full_migration_and_flip(self):
        db, s = make_db()
        eager = EagerMigration(db)
        eager.submit("m", SPLIT_DDL)
        assert eager.is_complete
        assert s.execute("SELECT COUNT(*) FROM a").scalar() == 40
        assert s.execute("SELECT COUNT(*) FROM b").scalar() == 40
        with pytest.raises(SchemaVersionError):
            s.execute("SELECT * FROM src")

    def test_resubmission_rejected(self):
        db, s = make_db()
        eager = EagerMigration(db)
        eager.submit("m", SPLIT_DDL)
        with pytest.raises(MigrationStateError):
            eager.submit("m2", SPLIT_DDL)

    def test_concurrent_reader_blocks_until_commit(self):
        """A reader arriving during eager migration queues behind the X
        table lock — the downtime window of figure 3."""
        db, s = make_db(rows=300)
        release = threading.Event()
        # Slow the migration artificially by holding the lock first.
        # Pinned: the reader must take an IS lock to block the migration.
        blocker = db.connect(isolation="read_committed")
        blocker.execute("BEGIN")
        blocker.execute("SELECT COUNT(*) FROM src")  # IS lock held

        timings = {}

        def migrate():
            eager = EagerMigration(db)
            timings["start"] = time.monotonic()
            eager.submit("m", SPLIT_DDL)
            timings["end"] = time.monotonic()

        thread = threading.Thread(target=migrate)
        thread.start()
        time.sleep(0.2)
        assert "end" not in timings  # migration waits for the reader
        blocker.execute("COMMIT")
        thread.join(timeout=10)
        assert "end" in timings

    def test_eager_aggregate_without_flip(self):
        db, s = make_db()
        eager = EagerMigration(db, big_flip=False)
        eager.submit("m", AGG_DDL)
        assert s.execute("SELECT COUNT(*) FROM src").scalar() == 40
        assert s.execute("SELECT COUNT(*) FROM t").scalar() == 4


class TestMultiStep:
    def test_copy_then_switch(self):
        db, s = make_db()
        multistep = MultiStepMigration(db, chunk=16, interval=0.0)
        multistep.submit("m", SPLIT_DDL)
        assert multistep.await_completion(timeout=20)
        assert s.execute("SELECT COUNT(*) FROM a").scalar() == 40
        with pytest.raises(SchemaVersionError):
            s.execute("SELECT * FROM src")

    def test_old_schema_usable_during_copy(self):
        db, s = make_db(rows=2000)
        multistep = MultiStepMigration(db, chunk=64, interval=0.005)
        multistep.submit("m", SPLIT_DDL)
        # Old-schema reads and writes work while the copier runs.
        assert s.execute("SELECT COUNT(*) FROM src").scalar() >= 2000
        s.execute("UPDATE src SET v = v + 1 WHERE id = 0")
        assert multistep.await_completion(timeout=30)

    def test_dual_write_update_of_copied_row(self):
        """An update to an already-copied row must land in the shadow —
        the 'writes happen twice' behaviour."""
        db, s = make_db(rows=50)
        multistep = MultiStepMigration(db, chunk=500, interval=0.0)
        multistep.submit("m", SPLIT_DDL)
        assert multistep.await_completion(timeout=20) is True
        # After the switch the shadow is authoritative; but we want to
        # verify the dual-write path itself, so run a second scenario
        # where we update mid-copy:
        db2, s2 = make_db(rows=5000)
        ms2 = MultiStepMigration(db2, chunk=32, interval=0.002)
        ms2.submit("m", SPLIT_DDL)
        # update a low-ordinal row: almost certainly already copied
        time.sleep(0.05)
        s2.execute("UPDATE src SET v = 7777 WHERE id = 0")
        assert ms2.await_completion(timeout=60)
        assert s2.execute("SELECT v FROM a WHERE id = 0").scalar() == 7777

    def test_insert_during_copy_lands_in_shadow(self):
        db, s = make_db(rows=3000)
        multistep = MultiStepMigration(db, chunk=32, interval=0.002)
        multistep.submit("m", SPLIT_DDL)
        s.execute("INSERT INTO src VALUES (99999, 1, 42)")
        assert multistep.await_completion(timeout=60)
        assert s.execute("SELECT v FROM a WHERE id = 99999").scalar() == 42

    def test_delete_during_copy_removed_from_shadow(self):
        db, s = make_db(rows=3000)
        multistep = MultiStepMigration(db, chunk=32, interval=0.002)
        multistep.submit("m", SPLIT_DDL)
        time.sleep(0.05)  # let the copier cover the low ordinals
        s.execute("DELETE FROM src WHERE id = 1")
        assert multistep.await_completion(timeout=60)
        assert s.execute("SELECT COUNT(*) FROM a WHERE id = 1").scalar() == 0

    def test_keyed_unit_group_recompute(self):
        """Aggregate shadow: a write to a copied group recomputes it."""
        db, s = make_db(rows=200)
        multistep = MultiStepMigration(
            db, chunk=64, interval=0.0, big_flip=False
        )
        multistep.submit("m", AGG_DDL)
        assert multistep.await_completion(timeout=30)
        before = s.execute("SELECT total FROM t WHERE grp = 1").scalar()
        # Hooks are removed after completion; this checks final totals.
        expected = sum(i for i in range(200) if i % 4 == 1)
        assert before == expected

    def test_keyed_unit_dual_write_mid_copy(self):
        db, s = make_db(rows=4000)
        multistep = MultiStepMigration(
            db, chunk=16, interval=0.002, big_flip=False
        )
        multistep.submit("m", AGG_DDL)
        time.sleep(0.05)
        # Insert a new source row for group 1 while copying.
        s.execute("INSERT INTO src VALUES (99999, 1, 1000)")
        assert multistep.await_completion(timeout=60)
        expected = sum(i for i in range(4000) if i % 4 == 1) + 1000
        assert s.execute("SELECT total FROM t WHERE grp = 1").scalar() == expected


class TestController:
    def test_lazy_strategy(self):
        db, s = make_db()
        controller = MigrationController(db)
        from repro.core import BackgroundConfig

        handle = controller.submit(
            "m",
            SPLIT_DDL,
            strategy=Strategy.LAZY,
            background=BackgroundConfig(delay=0.05, chunk=64, interval=0.0),
        )
        assert controller.new_schema_active
        assert handle.await_completion(timeout=20)

    def test_eager_strategy(self):
        db, s = make_db()
        controller = MigrationController(db)
        handle = controller.submit("m", SPLIT_DDL, strategy=Strategy.EAGER)
        assert handle.is_complete
        assert controller.new_schema_active

    def test_multistep_strategy_schema_flips_late(self):
        db, s = make_db(rows=2000)
        controller = MigrationController(db)
        handle = controller.submit(
            "m",
            SPLIT_DDL,
            strategy=Strategy.MULTISTEP,
            multistep_chunk=64,
            multistep_interval=0.002,
        )
        assert not controller.new_schema_active  # still copying
        assert handle.await_completion(timeout=30)
        assert controller.new_schema_active

    def test_second_migration_while_running_rejected(self):
        db, s = make_db(rows=3000)
        controller = MigrationController(db)
        controller.submit(
            "m",
            SPLIT_DDL,
            strategy=Strategy.MULTISTEP,
            multistep_chunk=16,
            multistep_interval=0.01,
        )
        with pytest.raises(MigrationStateError):
            controller.submit("m2", AGG_DDL, strategy=Strategy.EAGER)
        controller.active.await_completion(timeout=60)

    def test_progress_shapes(self):
        db, s = make_db()
        controller = MigrationController(db)
        handle = controller.submit("m", SPLIT_DDL, strategy=Strategy.EAGER)
        progress = handle.progress()
        assert progress["complete"] is True
        assert progress["tuples_migrated"] == 80  # 40 rows x 2 outputs
