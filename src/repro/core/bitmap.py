"""The migration bitmap (paper section 3.3, Algorithm 2).

Two bits per migration granule, stored adjacently so both are read in a
single load:

* ``[0 0]`` — NOT_STARTED: the granule has not begun migrating;
* ``[1 0]`` — IN_PROGRESS: a worker holds the migration "lock bit";
* ``[0 1]`` — MIGRATED: migration completed;
* ``[1 1]`` — never occurs (asserted).

The bitmap is partitioned into chunks, each protected by its own latch,
"to reduce cross-worker latch contention" (section 3.3).  The fast path
of :meth:`try_begin` reads the pair without the latch and only takes the
exclusive latch when it intends to set the lock bit — mirroring
Algorithm 2's recheck-under-latch structure.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Iterable, Iterator

NOT_STARTED = 0b00
MIGRATED = 0b01  # migrate bit
IN_PROGRESS = 0b10  # lock bit

_GRANULES_PER_BYTE = 4  # 2 bits each


class Claim(Enum):
    """Outcome of a worker's attempt to claim a granule (Algorithm 2)."""

    MIGRATE = "MIGRATE"  # caller owns the granule: add to WIP
    SKIP = "SKIP"  # another worker is migrating it: add to SKIP
    DONE = "DONE"  # already migrated: nothing to do


class MigrationBitmap:
    """Partitioned two-bit-per-granule migration tracker."""

    def __init__(self, size: int, partitions: int = 16) -> None:
        """``size`` is the number of granules (dense ordinals 0..size-1)."""
        if size < 0:
            raise ValueError("bitmap size must be non-negative")
        self.size = size
        self._bits = bytearray((size + _GRANULES_PER_BYTE - 1) // _GRANULES_PER_BYTE)
        partitions = max(1, min(partitions, max(size, 1)))
        self._partition_count = partitions
        # Partition by contiguous granule ranges, aligned to whole bytes
        # so two partitions never share a byte.
        granules_per_partition = max(
            _GRANULES_PER_BYTE,
            -(-size // partitions),  # ceil
        )
        # Round up to a multiple of 4 for byte alignment.
        self._granules_per_partition = (
            (granules_per_partition + _GRANULES_PER_BYTE - 1)
            // _GRANULES_PER_BYTE
            * _GRANULES_PER_BYTE
        )
        actual = max(1, -(-size // self._granules_per_partition)) if size else 1
        self._latches = [threading.Lock() for _ in range(actual)]
        self._migrated_count = 0
        self._count_latch = threading.Lock()
        # Snapshot-visibility stamps: granule ordinal -> the CommitStamp
        # of the migration transaction that claimed it.  Set at claim
        # time, so the instant that transaction commits (its stamp gains
        # a timestamp) the granule is *visibly* migrated to snapshots at
        # or after that timestamp — there is no window between commit
        # and mark_migrated where snapshot readers double-count.
        self._stamps: dict[int, object] = {}
        self._stamps_latch = threading.Lock()

    # ------------------------------------------------------------------
    # Raw pair access
    # ------------------------------------------------------------------
    def _pair(self, ordinal: int) -> int:
        byte = self._bits[ordinal // _GRANULES_PER_BYTE]
        shift = (ordinal % _GRANULES_PER_BYTE) * 2
        return (byte >> shift) & 0b11

    def _set_pair(self, ordinal: int, value: int) -> None:
        index = ordinal // _GRANULES_PER_BYTE
        shift = (ordinal % _GRANULES_PER_BYTE) * 2
        byte = self._bits[index]
        byte &= ~(0b11 << shift)
        byte |= value << shift
        self._bits[index] = byte

    def _latch_for(self, ordinal: int) -> threading.Lock:
        return self._latches[
            min(ordinal // self._granules_per_partition, len(self._latches) - 1)
        ]

    def _check(self, ordinal: int) -> None:
        if not 0 <= ordinal < self.size:
            raise IndexError(f"granule {ordinal} out of range [0, {self.size})")

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def try_begin(self, ordinal: int) -> Claim:
        """Attempt to claim ``ordinal`` for migration (Algorithm 2).

        Returns MIGRATE if this worker set the lock bit (it must later
        call :meth:`mark_migrated` or :meth:`reset`), SKIP if another
        worker holds it, DONE if already migrated.
        """
        self._check(ordinal)
        pair = self._pair(ordinal)  # unlatched fast-path read (lines 1-4)
        if pair & MIGRATED:
            return Claim.DONE
        if pair & IN_PROGRESS:
            return Claim.SKIP
        latch = self._latch_for(ordinal)
        with latch:  # lines 5-16: recheck under the exclusive latch
            pair = self._pair(ordinal)
            if pair & MIGRATED:
                return Claim.DONE
            if pair & IN_PROGRESS:
                return Claim.SKIP
            self._set_pair(ordinal, IN_PROGRESS)
            return Claim.MIGRATE

    def mark_migrated(self, ordinals: Iterable[int]) -> None:
        """Algorithm 1 line 9: flip claimed granules to ``[0 1]``."""
        count = 0
        for ordinal in ordinals:
            self._check(ordinal)
            with self._latch_for(ordinal):
                pair = self._pair(ordinal)
                assert pair != (IN_PROGRESS | MIGRATED), "state [1 1] must not occur"
                if pair & MIGRATED:
                    continue
                self._set_pair(ordinal, MIGRATED)
                count += 1
        if count:
            with self._count_latch:
                self._migrated_count += count

    def reset(self, ordinals: Iterable[int]) -> None:
        """Abort handling (section 3.5): claimed granules back to [0 0]."""
        for ordinal in ordinals:
            self._check(ordinal)
            with self._latch_for(ordinal):
                pair = self._pair(ordinal)
                if pair == IN_PROGRESS:
                    self._set_pair(ordinal, NOT_STARTED)

    # ------------------------------------------------------------------
    # Snapshot-visibility stamps
    # ------------------------------------------------------------------
    def set_stamps(self, ordinals: Iterable[int], stamp: object) -> None:
        """Record the claiming migration txn's commit stamp for each
        granule (called between claim and produce)."""
        with self._stamps_latch:
            for ordinal in ordinals:
                self._stamps[ordinal] = stamp

    def clear_stamps(self, ordinals: Iterable[int]) -> None:
        """Abort path: the claim is released, drop its stamps."""
        with self._stamps_latch:
            for ordinal in ordinals:
                self._stamps.pop(ordinal, None)

    def stamp_of(self, ordinal: int) -> object | None:
        """The claiming txn's stamp, or None for a granule migrated
        outside stamp tracking (recovery rebuild, legacy paths)."""
        with self._stamps_latch:
            return self._stamps.get(ordinal)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state(self, ordinal: int) -> int:
        """The raw two-bit pair for a granule."""
        self._check(ordinal)
        return self._pair(ordinal)

    def is_migrated(self, ordinal: int) -> bool:
        self._check(ordinal)
        return bool(self._pair(ordinal) & MIGRATED)

    def is_in_progress(self, ordinal: int) -> bool:
        self._check(ordinal)
        return bool(self._pair(ordinal) & IN_PROGRESS)

    @property
    def migrated_count(self) -> int:
        with self._count_latch:
            return self._migrated_count

    @property
    def all_migrated(self) -> bool:
        return self.migrated_count >= self.size

    def iter_unmigrated(self, start: int = 0, limit: int | None = None) -> Iterator[int]:
        """Yield granules whose migrate bit is unset, from ``start``.
        Used by background migration threads to find remaining work."""
        produced = 0
        for ordinal in range(start, self.size):
            if not self._pair(ordinal) & MIGRATED:
                yield ordinal
                produced += 1
                if limit is not None and produced >= limit:
                    return

    def __len__(self) -> int:
        return self.size
