"""Tests for migration classification (paper section 3.1) and spec parsing."""

import pytest

from repro import Database
from repro.core import MigrationCategory, parse_migration
from repro.core.granularity import GranuleMapper
from repro.errors import UnsupportedMigrationError
from repro.storage import Tid


@pytest.fixture
def s(db):
    session = db.connect()
    session.execute(
        "CREATE TABLE cust (id INT PRIMARY KEY, name VARCHAR(20), bal INT, city VARCHAR(20))"
    )
    session.execute(
        "CREATE TABLE ol (w INT, o INT, i INT, amount INT, PRIMARY KEY (w, o, i))"
    )
    session.execute(
        "CREATE TABLE stk (w INT, i INT, qty INT, PRIMARY KEY (w, i))"
    )
    session.execute(
        "CREATE TABLE acct (id INT PRIMARY KEY, owner INT REFERENCES cust (id), v INT)"
    )
    return session


class TestClassification:
    def test_single_table_projection_is_one_to_one(self, db, s):
        spec = parse_migration(
            "m", "CREATE TABLE c2 AS SELECT id, name FROM cust", db.catalog
        )
        unit = spec.units[0]
        assert unit.category is MigrationCategory.ONE_TO_ONE
        assert unit.anchor == "cust"
        assert unit.outputs[0].column_names == ("id", "name")

    def test_split_coalesces_to_one_to_n(self, db, s):
        spec = parse_migration(
            "m",
            "CREATE TABLE a AS SELECT id, bal FROM cust;"
            "CREATE TABLE b AS SELECT id, city FROM cust;",
            db.catalog,
        )
        assert len(spec.units) == 1
        unit = spec.units[0]
        assert unit.category is MigrationCategory.ONE_TO_N
        assert unit.output_tables == ("a", "b")

    def test_group_by_is_n_to_one(self, db, s):
        spec = parse_migration(
            "m",
            "CREATE TABLE totals AS SELECT w, o, SUM(amount) AS total "
            "FROM ol GROUP BY w, o",
            db.catalog,
        )
        unit = spec.units[0]
        assert unit.category is MigrationCategory.N_TO_ONE
        assert unit.group_columns == ("w", "o")
        assert unit.anchor == "ol"

    def test_fk_pk_join_is_one_to_one_on_fk_side(self, db, s):
        """Joining on the referenced table's PK: section 3.6 option 2 —
        track the FK input table, no state on the PK side."""
        spec = parse_migration(
            "m",
            "CREATE TABLE av AS SELECT a.id AS aid, a.v, c.name "
            "FROM acct a, cust c WHERE a.owner = c.id",
            db.catalog,
        )
        unit = spec.units[0]
        assert unit.category is MigrationCategory.ONE_TO_ONE
        assert unit.anchor == "acct"
        assert unit.aux is not None
        assert unit.aux.table == "cust"
        assert unit.aux.pairs == (("owner", "id"),)

    def test_many_to_many_join_is_n_to_n(self, db, s):
        spec = parse_migration(
            "m",
            "CREATE TABLE ols AS SELECT ol.w AS olw, ol.o, ol.amount, "
            "stk.w AS sw, stk.qty FROM ol, stk WHERE stk.i = ol.i",
            db.catalog,
        )
        unit = spec.units[0]
        assert unit.category is MigrationCategory.N_TO_N
        assert unit.join_key is not None
        assert unit.join_key.anchor_columns == ("i",)
        assert unit.join_key.other_columns == ("i",)

    def test_join_with_explicit_join_syntax(self, db, s):
        spec = parse_migration(
            "m",
            "CREATE TABLE av AS SELECT a.v, c.name FROM acct a "
            "JOIN cust c ON a.owner = c.id",
            db.catalog,
        )
        assert spec.units[0].aux is not None

    def test_static_filter_retained(self, db, s):
        spec = parse_migration(
            "m",
            "CREATE TABLE rich AS SELECT id, bal FROM cust WHERE bal > 100",
            db.catalog,
        )
        assert spec.units[0].static_filter is not None

    def test_star_expansion(self, db, s):
        spec = parse_migration(
            "m", "CREATE TABLE c2 AS SELECT * FROM cust", db.catalog
        )
        assert spec.units[0].outputs[0].column_names == (
            "id", "name", "bal", "city",
        )

    def test_explicit_schema_plus_insert(self, db, s):
        spec = parse_migration(
            "m",
            "CREATE TABLE c2 (id INT PRIMARY KEY, name VARCHAR(20));"
            "INSERT INTO c2 (id, name) SELECT id, name FROM cust;",
            db.catalog,
        )
        assert "c2" in spec.explicit_schemas
        assert spec.units[0].outputs[0].column_names == ("id", "name")

    def test_insert_column_override(self, db, s):
        spec = parse_migration(
            "m",
            "CREATE TABLE c2 (cid INT PRIMARY KEY, cname VARCHAR(20));"
            "INSERT INTO c2 (cid, cname) SELECT id, name FROM cust;",
            db.catalog,
        )
        assert spec.units[0].outputs[0].column_names == ("cid", "cname")

    def test_index_statements_collected(self, db, s):
        spec = parse_migration(
            "m",
            "CREATE TABLE c2 AS SELECT id, name FROM cust;"
            "CREATE INDEX c2_name ON c2 (name);",
            db.catalog,
        )
        assert len(spec.index_statements) == 1

    def test_describe(self, db, s):
        spec = parse_migration(
            "m", "CREATE TABLE c2 AS SELECT id FROM cust", db.catalog
        )
        assert "1:1" in spec.describe()


class TestUnsupportedShapes:
    def test_three_table_join_rejected(self, db, s):
        with pytest.raises(UnsupportedMigrationError):
            parse_migration(
                "m",
                "CREATE TABLE x AS SELECT a.v FROM acct a, cust c, stk s "
                "WHERE a.owner = c.id AND s.i = a.id",
                db.catalog,
            )

    def test_group_by_over_join_rejected(self, db, s):
        with pytest.raises(UnsupportedMigrationError):
            parse_migration(
                "m",
                "CREATE TABLE x AS SELECT c.id, SUM(a.v) FROM acct a, cust c "
                "WHERE a.owner = c.id GROUP BY c.id",
                db.catalog,
            )

    def test_group_by_expression_rejected(self, db, s):
        with pytest.raises(UnsupportedMigrationError):
            parse_migration(
                "m",
                "CREATE TABLE x AS SELECT SUM(amount) FROM ol GROUP BY w + 1",
                db.catalog,
            )

    def test_join_without_equality_rejected(self, db, s):
        with pytest.raises(UnsupportedMigrationError):
            parse_migration(
                "m",
                "CREATE TABLE x AS SELECT a.v FROM acct a, cust c WHERE a.v < c.bal",
                db.catalog,
            )

    def test_empty_migration_rejected(self, db, s):
        with pytest.raises(UnsupportedMigrationError):
            parse_migration("m", "CREATE INDEX i ON cust (name)", db.catalog)

    def test_insert_without_schema_rejected(self, db, s):
        with pytest.raises(UnsupportedMigrationError):
            parse_migration(
                "m", "INSERT INTO nowhere SELECT id FROM cust", db.catalog
            )

    def test_insert_values_rejected(self, db, s):
        with pytest.raises(UnsupportedMigrationError):
            parse_migration(
                "m",
                "CREATE TABLE c2 (id INT); INSERT INTO c2 VALUES (1)",
                db.catalog,
            )

    def test_schema_missing_mapped_column_rejected(self, db, s):
        # mapped columns must exist in the declared schema
        with pytest.raises(UnsupportedMigrationError):
            parse_migration(
                "m2",
                "CREATE TABLE c4 (id INT);"
                "INSERT INTO c4 SELECT id, name FROM cust;",
                db.catalog,
            )


class TestGranuleMapper:
    def test_tuple_granularity(self, db, s):
        for i in range(10):
            s.execute("INSERT INTO cust VALUES (?, 'x', 0, 'y')", [i])
        heap = db.catalog.table("cust").heap
        mapper = GranuleMapper(heap, granule_size=1)
        assert mapper.granule_count == 10
        assert mapper.granule_of_ordinal(7) == 7
        assert len(list(mapper.tuples_in(3))) == 1

    def test_page_granularity(self, db, s):
        for i in range(10):
            s.execute("INSERT INTO cust VALUES (?, 'x', 0, 'y')", [i])
        heap = db.catalog.table("cust").heap
        mapper = GranuleMapper(heap, granule_size=4)
        assert mapper.granule_count == 3  # ceil(10 / 4)
        assert mapper.granule_of_ordinal(7) == 1
        assert len(list(mapper.tuples_in(0))) == 4
        assert len(list(mapper.tuples_in(2))) == 2

    def test_invalid_granule_size(self, db, s):
        heap = db.catalog.table("cust").heap
        with pytest.raises(ValueError):
            GranuleMapper(heap, granule_size=0)

    def test_granule_of_tid(self, db, s):
        s.execute("INSERT INTO cust VALUES (1, 'x', 0, 'y')")
        heap = db.catalog.table("cust").heap
        mapper = GranuleMapper(heap, granule_size=2)
        assert mapper.granule_of_tid(Tid(0, 0)) == 0


class TestFkPkJoinOptions:
    """Section 3.6's two tracking options for FK-PK joins."""

    DDL = (
        "CREATE TABLE av AS SELECT a.id AS aid, a.v, c.name "
        "FROM acct a, cust c WHERE a.owner = c.id"
    )

    def test_option2_default_is_fkit_bitmap(self, db, s):
        spec = parse_migration("m", self.DDL, db.catalog)
        unit = spec.units[0]
        assert unit.category is MigrationCategory.ONE_TO_ONE
        assert unit.aux is not None

    def test_option1_value_hashmap(self, db, s):
        spec = parse_migration(
            "m", self.DDL, db.catalog, fkpk_join_mode="value-hashmap"
        )
        unit = spec.units[0]
        assert unit.category is MigrationCategory.N_TO_N
        assert unit.join_key is not None
        assert unit.join_key.anchor_columns == ("owner",)
        assert unit.join_key.other_columns == ("id",)

    def test_unknown_mode_rejected(self, db, s):
        with pytest.raises(UnsupportedMigrationError):
            parse_migration(
                "m", self.DDL, db.catalog, fkpk_join_mode="bogus"
            )

    def test_option1_migrates_group_together(self, db, s):
        """Option 1: 'Immediately migrate all other tuples in the FKIT
        with the same foreign key.'"""
        from repro.core import BackgroundConfig, LazyMigrationEngine

        # data: 3 parents, 9 children
        for k in range(3):
            s.execute(
                "INSERT INTO cust VALUES (?, ?, 0, 'c')", [100 + k, f"n{k}"]
            )
        for i in range(9):
            s.execute(
                "INSERT INTO acct VALUES (?, ?, ?)", [i, 100 + (i % 3), i]
            )
        engine = LazyMigrationEngine(
            db,
            background=BackgroundConfig(enabled=False),
            fkpk_join_mode="value-hashmap",
        )
        engine.submit("m", self.DDL)
        # Pinned: the SELECT must lazy-migrate its FK group under 2PL.
        rc = db.connect(isolation="read_committed")
        rc.execute("SELECT v FROM av WHERE aid = 4")
        # aid=4 has owner 101: the whole owner-101 group (3 rows) migrated.
        assert engine.stats.tuples_migrated == 3
