"""End-to-end distributed tracing, wait-event classing, slow queries.

The contract under test (DESIGN.md §14): a traced client request
crosses the socket carrying ``(trace_id, span_id)`` in an optional
frame trailer, the server continues the trace through the event loop
(``net.queue`` → ``server.execute``/``server.txn`` → engine spans →
``net.flush``), and every blocking seam classifies its time into one
of the :data:`~repro.obs.tracectx.WAIT_CLASSES` — so the Perfetto
export, ``bullfrog_stat_wait_events``, and the slow-query record are
three views of the *same* measurements and must reconcile.

Compatibility is part of the contract: the trailer is strictly
optional, so an old client speaks to a new server (no trailer → no
trace) and a new client withholds the trailer from a server that did
not advertise ``CAP_TRACE``.
"""

from __future__ import annotations

import json
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BackgroundConfig, Database, LazyMigrationEngine
from repro.net import BullfrogServer, ConnectionPool, ServerConfig, connect
from repro.net import protocol
from repro.obs import Observability, TraceLog, WAIT_CLASSES, merge_chrome

pytestmark = pytest.mark.obs

_settings = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_ids = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_trace_strategy = st.none() | st.tuples(_ids, _ids)

_TRAILER_LEN = 17  # u8 marker + i64 trace_id + i64 span_id


# ----------------------------------------------------------------------
# Wire trailer: round trips and old/new peer compatibility
# ----------------------------------------------------------------------


class TestTrailerCodec:
    @_settings
    @given(sql=st.text(max_size=120), trace=_trace_strategy)
    def test_query_trailer_roundtrip(self, sql, trace):
        frame = protocol.encode_query(sql, (1, None, "x"), trace=trace)
        _, payload, _ = protocol.decode_frame(frame)
        out = protocol.decode_query(payload)
        assert out["sql"] == sql
        assert out["trace"] == trace

    @_settings
    @given(
        name=st.text(max_size=40),
        params=st.none() | st.tuples(_ids),
        trace=_trace_strategy,
    )
    def test_execute_trailer_roundtrip(self, name, params, trace):
        frame = protocol.encode_execute(name, params, trace=trace)
        _, payload, _ = protocol.decode_frame(frame)
        out = protocol.decode_execute(payload)
        assert out["name"] == name
        assert out["params"] == params
        assert out["trace"] == trace

    @_settings
    @given(
        op=st.sampled_from(
            [protocol.TXN_BEGIN, protocol.TXN_COMMIT, protocol.TXN_ROLLBACK]
        ),
        trace=_trace_strategy,
    )
    def test_txn_trailer_roundtrip(self, op, trace):
        frame = protocol.encode_txn(op, trace=trace)
        _, payload, _ = protocol.decode_frame(frame)
        out = protocol.decode_txn(payload)
        assert out["op"] == op
        assert out["trace"] == trace

    @_settings
    @given(caps=st.integers(min_value=0, max_value=255))
    def test_welcome_capability_trailer_roundtrip(self, caps):
        frame = protocol.encode_welcome("1.0.0", 3, 9, capabilities=caps)
        _, payload, _ = protocol.decode_frame(frame)
        out = protocol.decode_welcome(payload)
        assert out["capabilities"] == caps
        assert out["schema_epoch"] == 3


class TestPeerCompat:
    """The trailer must be invisible to peers that predate it."""

    def test_untraced_frame_is_byte_identical_to_old_client(self):
        # trace=None emits nothing: the frame an old client library
        # produces and the frame a new untraced client produces are the
        # same bytes, so an old *server* accepts the new client too.
        for traced, plain in (
            (
                protocol.encode_query("SELECT 1", (7,), trace=(5, 6)),
                protocol.encode_query("SELECT 1", (7,)),
            ),
            (
                protocol.encode_execute("q", (7,), trace=(5, 6)),
                protocol.encode_execute("q", (7,)),
            ),
            (
                protocol.encode_txn(protocol.TXN_BEGIN, trace=(5, 6)),
                protocol.encode_txn(protocol.TXN_BEGIN),
            ),
        ):
            _, traced_payload, _ = protocol.decode_frame(traced)
            _, plain_payload, _ = protocol.decode_frame(plain)
            assert traced_payload[:-_TRAILER_LEN] == plain_payload
            assert traced_payload[-_TRAILER_LEN] == protocol._TRACE_MARKER

    @_settings
    @given(sql=st.text(max_size=60), trace=st.tuples(_ids, _ids))
    def test_old_client_frame_decodes_as_untraced(self, sql, trace):
        # A new server reading an old client: the payload simply ends
        # where the trailer would start, and decode yields trace=None
        # with every other field intact.
        _, traced_payload, _ = protocol.decode_frame(
            protocol.encode_query(sql, (), trace=trace)
        )
        old = protocol.decode_query(traced_payload[:-_TRAILER_LEN])
        new = protocol.decode_query(traced_payload)
        assert old["trace"] is None
        assert new["trace"] == trace
        assert old["sql"] == new["sql"] == sql

    def test_welcome_without_trailer_means_no_capabilities(self):
        # Old server → new client: WELCOME carries no capability byte,
        # which must decode as "no capabilities" rather than an error.
        frame = protocol.encode_welcome("0.9.0", 1, 2)
        _, payload, _ = protocol.decode_frame(frame)
        assert protocol.decode_welcome(payload)["capabilities"] == 0

    def test_client_withholds_trailer_from_incapable_server(self):
        # Behavioral leg of new-client/old-server compat: when the
        # server did not advertise CAP_TRACE, the client still records
        # its local span but puts nothing on the wire — so the server
        # log has no request spans for that trace id.
        db = Database(obs=Observability())
        srv = BullfrogServer(db, ServerConfig(port=0)).start()
        try:
            log = TraceLog()
            with connect("127.0.0.1", srv.port, trace=True,
                         trace_log=log) as conn:
                assert conn.trace_capable
                conn.trace_capable = False  # simulate an old server
                conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                rows = conn.execute("SELECT * FROM t").rows
                assert rows == []
                ctx = conn.last_trace
            assert ctx is not None
            assert log.events_for_trace(ctx.trace_id)  # client-side span
            assert db.obs.trace.events_for_trace(ctx.trace_id) == []
        finally:
            srv.shutdown(drain_timeout=1.0)


# ----------------------------------------------------------------------
# End-to-end: one request, one trace, client and server sides linked
# ----------------------------------------------------------------------


def _start_traced_server(**obs_kwargs):
    db = Database(obs=Observability(**obs_kwargs))
    srv = BullfrogServer(db, ServerConfig(port=0)).start()
    return db, srv


def _events_by_name(events):
    out = {}
    for event in events:
        out.setdefault(event.name, []).append(event)
    return out


class TestEndToEnd:
    def test_single_statement_trace_spans_client_and_server(self):
        db, srv = _start_traced_server()
        client_log = TraceLog()
        try:
            with connect("127.0.0.1", srv.port, trace=True,
                         trace_log=client_log) as conn:
                assert conn.trace_capable
                conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
                conn.execute("INSERT INTO t VALUES (?, ?)", (1, "one"))
                rows = conn.execute("SELECT v FROM t WHERE id = ?", (1,)).rows
                assert rows == [("one",)]
                ctx = conn.last_trace
            assert ctx is not None
            time.sleep(0.1)  # net.flush is logged after the reply is sent

            # Client side: one root span carrying the ids we propagated.
            client_events = client_log.events_for_trace(ctx.trace_id)
            assert [e.name for e in client_events] == ["client.query"]
            root = client_events[0]
            assert root.args["span"] == ctx.span_id
            assert root.args["sql"].startswith("SELECT")

            # Server side: the request tree hangs off the client span.
            server_events = _events_by_name(
                db.obs.trace.events_for_trace(ctx.trace_id)
            )
            queue = server_events["net.queue"][0]
            assert queue.args["parent"] == ctx.span_id
            assert queue.args["wait"] == "net_queue"
            hop = queue.args["span"]
            execute = server_events["server.execute"][0]
            assert execute.args["span"] == hop
            stmt = [
                e
                for name, evs in server_events.items()
                if name.startswith("stmt.")
                for e in evs
            ]
            assert stmt and stmt[0].args["parent"] == hop
            flush = server_events["net.flush"][0]
            assert flush.args["parent"] == hop

            # Durations nest: every server span fits inside the client
            # round trip (clocks differ by epoch, so compare durations).
            assert execute.dur <= root.dur

            # The merged export is one Perfetto-loadable document with
            # a process row per side.
            doc = json.loads(
                json.dumps(
                    merge_chrome(
                        [client_log.to_chrome(), db.obs.trace.to_chrome()],
                        ["client", "bullfrogd"],
                    )
                )
            )
            pids = {e["pid"] for e in doc["traceEvents"]}
            assert pids == {1, 2}
            spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
            assert all("dur" in e for e in spans)
            linked = [
                e
                for e in spans
                if e.get("args", {}).get("trace") == ctx.trace_id
            ]
            assert {e["pid"] for e in linked} == {1, 2}
        finally:
            srv.shutdown(drain_timeout=1.0)

    def test_txn_commit_trace_includes_wal_append(self):
        db, srv = _start_traced_server()
        try:
            with connect("127.0.0.1", srv.port, trace=True,
                         trace_log=TraceLog()) as conn:
                conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
                conn.begin()
                conn.execute("INSERT INTO t VALUES (?, ?)", (1, "one"))
                conn.commit()
                ctx = conn.last_trace  # the COMMIT op's root
            assert ctx is not None
            time.sleep(0.1)
            names = {
                e.name for e in db.obs.trace.events_for_trace(ctx.trace_id)
            }
            assert {"net.queue", "server.txn", "wal.append"} <= names
        finally:
            srv.shutdown(drain_timeout=1.0)

    def test_sixteen_pipelined_clients_propagate_distinct_traces(self):
        db, srv = _start_traced_server()
        clients, ops_each = 16, 4
        errors: list[Exception] = []
        all_ctxs: list = []
        ctx_lock = threading.Lock()
        try:
            with connect("127.0.0.1", srv.port) as seed:
                seed.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
                seed.execute("INSERT INTO t VALUES (?, ?)", (1, "one"))

            def worker():
                try:
                    log = TraceLog()
                    with connect("127.0.0.1", srv.port, trace=True,
                                 trace_log=log) as conn:
                        pipe = conn.pipeline()
                        for _ in range(ops_each):
                            pipe.execute("SELECT v FROM t WHERE id = ?", (1,))
                        results = pipe.sync()
                        assert all(r.rows == [("one",)] for r in results)
                        assert len(pipe.traces) == ops_each
                        with ctx_lock:
                            all_ctxs.extend(pipe.traces)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker) for _ in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            assert not errors, errors
            assert all(ctx is not None for ctx in all_ctxs)
            trace_ids = {ctx.trace_id for ctx in all_ctxs}
            assert len(trace_ids) == clients * ops_each  # all distinct
            time.sleep(0.1)
            # Every propagated root got a server-side continuation whose
            # parent is exactly the client span that caused it.
            for ctx in all_ctxs:
                events = _events_by_name(
                    db.obs.trace.events_for_trace(ctx.trace_id)
                )
                queue = events["net.queue"][0]
                assert queue.args["parent"] == ctx.span_id
                assert events["server.execute"][0].args["span"] == \
                    queue.args["span"]
        finally:
            srv.shutdown(drain_timeout=2.0)

    def test_untraced_client_leaves_no_request_spans(self):
        db, srv = _start_traced_server()
        try:
            with connect("127.0.0.1", srv.port) as conn:
                assert not conn.trace_capable
                conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                conn.execute("SELECT * FROM t")
            names = {e.name for e in db.obs.trace.events()}
            # Engine-internal sampling may still fire, but nothing ties
            # spans to a network request that never identified itself.
            assert not names & {"net.queue", "server.execute",
                                "server.txn", "net.flush"}
        finally:
            srv.shutdown(drain_timeout=1.0)

    def test_slow_query_record_carries_trace_and_net_queue_wait(self):
        db, srv = _start_traced_server(slow_query_threshold=0.0)
        try:
            with connect("127.0.0.1", srv.port, trace=True,
                         trace_log=TraceLog()) as conn:
                conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
                conn.execute("INSERT INTO t VALUES (?, ?)", (1, "one"))
                conn.execute("SELECT v FROM t WHERE id = ?", (1,))
                ctx = conn.last_trace
            assert ctx is not None
            records = [
                r for r in db.obs.slow_queries()
                if r.get("trace_id") == ctx.trace_id
            ]
            assert records, "threshold 0.0 must capture every statement"
            record = records[-1]
            assert record["stmt"] == "select"
            # Chain: client root → server hop (net.queue) → statement.
            hop = _events_by_name(
                db.obs.trace.events_for_trace(ctx.trace_id)
            )["net.queue"][0].args["span"]
            assert record["parent_id"] == hop
            # The server hop's queue time lands in the same accumulator
            # the statement reports from.
            assert "net_queue" in record["waits_ms"]
            assert record["waits_ms"]["net_queue"] >= 0.0
            assert record["duration_ms"] >= record["cpu_ms"] >= 0.0

            # And the same record is queryable through the system view.
            session = db.connect()
            rows = session.execute(
                "SELECT * FROM bullfrog_stat_slow_queries"
            ).dicts()
            assert any(r["trace_id"] == ctx.trace_id for r in rows)
        finally:
            srv.shutdown(drain_timeout=1.0)

    def test_server_health_views_expose_pool_and_buffers(self):
        db, srv = _start_traced_server()
        try:
            with connect("127.0.0.1", srv.port) as conn:
                conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")
                session = db.connect()
                server_rows = session.execute(
                    "SELECT * FROM bullfrog_stat_server"
                ).dicts()
                assert len(server_rows) == 1
                row = server_rows[0]
                assert row["workers"] >= 1
                assert row["connections"] >= 1
                assert row["workers_busy"] >= 0
                assert row["draining"] is False
                net_rows = session.execute(
                    "SELECT * FROM bullfrog_stat_network"
                ).dicts()
                assert net_rows
                assert all("inbox_depth" in r for r in net_rows)
                assert all(r["outbuf_hiwat"] >= 0 for r in net_rows)
        finally:
            srv.shutdown(drain_timeout=1.0)

    def test_pool_acquire_wait_is_classified(self):
        db, srv = _start_traced_server()
        obs = db.obs
        try:
            pool = ConnectionPool(
                "127.0.0.1", srv.port, size=1, obs=obs, trace_log=obs.trace
            )
            try:
                with pool.acquire() as conn:
                    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")

                    def contender():
                        with pool.acquire() as other:
                            other.execute("SELECT * FROM t")

                    thread = threading.Thread(target=contender)
                    thread.start()
                    time.sleep(0.25)  # hold the only slot
                thread.join(10)
                count, total = obs.wait_events_snapshot()["pool"]
                assert count >= 1
                assert total >= 0.15
                waits = [
                    e for e in obs.trace.events()
                    if e.name == "pool.acquire"
                    and (e.args or {}).get("wait") == "pool"
                ]
                assert waits
                assert max(e.dur for e in waits) >= 0.15 * 1e6
            finally:
                pool.close()
        finally:
            srv.shutdown(drain_timeout=1.0)


# ----------------------------------------------------------------------
# Wait-event classing (embedded): exactness and reconciliation
# ----------------------------------------------------------------------


class TestWaitClasses:
    def test_lock_wait_classified_with_blocker_attribution(self):
        obs = Observability(slow_query_threshold=0.0)
        db = Database(obs=obs)
        holder = db.connect(isolation="read_committed")
        holder.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        holder.execute("INSERT INTO t VALUES (?, ?)", (1, 0))

        holder.begin()
        holder.execute("UPDATE t SET v = ? WHERE id = ?", (1, 1))
        blocked_for: list[float] = []

        def blocked():
            waiter = db.connect(isolation="read_committed")
            start = time.perf_counter()
            waiter.execute("UPDATE t SET v = ? WHERE id = ?", (2, 1))
            blocked_for.append(time.perf_counter() - start)

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.3)  # keep the X lock held while the waiter blocks
        holder.commit()
        thread.join(10)
        assert blocked_for and blocked_for[0] >= 0.2

        # 1. The classifier: a ``lock`` wait event of about that length.
        count, total = obs.wait_events_snapshot()["lock"]
        assert count >= 1
        assert total >= 0.2

        # 2. The span: lock.wait naming at least one blocking txn.
        lock_spans = [
            e for e in obs.trace.events()
            if e.name == "lock.wait" and (e.args or {}).get("wait") == "lock"
        ]
        assert lock_spans
        assert any(e.args.get("blockers") for e in lock_spans)
        assert max(e.dur for e in lock_spans) >= 0.2 * 1e6

        # 3. The slow-query record: the waiter's UPDATE charges its
        # stall to ``lock``, and cpu excludes the wait.
        updates = [
            r for r in obs.slow_queries()
            if r["stmt"] == "update" and r["waits_ms"].get("lock", 0) > 0
        ]
        assert updates
        record = updates[-1]
        assert record["waits_ms"]["lock"] >= 200.0
        assert record["cpu_ms"] <= record["duration_ms"] - 200.0

        # 4. Reconciliation: view totals == sum of span-recorded waits.
        span_total = sum(e.dur for e in lock_spans) / 1e6
        assert abs(span_total - total) < 0.01

        # 5. The SQL surface agrees with the snapshot.
        rows = db.connect().execute(
            "SELECT * FROM bullfrog_stat_wait_events"
        ).dicts()
        by_class = {r["wait_class"]: r for r in rows}
        assert set(by_class) == set(WAIT_CLASSES)
        assert by_class["lock"]["count"] >= count
        assert by_class["lock"]["total_seconds"] >= total

    def test_sync_migration_wait_classified(self):
        obs = Observability(slow_query_threshold=0.0)
        db = Database(obs=obs)
        session = db.connect(isolation="read_committed")
        session.execute(
            "CREATE TABLE src (id INT PRIMARY KEY, grp INT, v INT,"
            " tag VARCHAR(10))"
        )
        for i in range(40):
            session.execute(
                "INSERT INTO src VALUES (?, ?, ?, ?)",
                (i, i % 5, i * 10, f"t{i % 3}"),
            )
        engine = LazyMigrationEngine(
            db, background=BackgroundConfig(enabled=False), obs=obs
        )
        engine.submit(
            "m",
            """
            CREATE TABLE left_part (id INT PRIMARY KEY, v INT);
            INSERT INTO left_part (id, v) SELECT id, v FROM src;
            """,
        )
        for i in range(40):
            rows = session.execute(
                "SELECT v FROM left_part WHERE id = ?", (i,)
            ).rows
            assert rows == [(i * 10,)]
        assert engine.is_complete

        count, total = obs.wait_events_snapshot()["migration"]
        assert count >= 1
        assert total > 0.0

        # Foreground statements that pulled tuples in synchronously
        # charge the stall to ``migration`` and report what they moved.
        migrated = [
            r for r in obs.slow_queries()
            if r["stmt"] == "select" and r["migration"]["tuples"] > 0
        ]
        assert migrated
        record = migrated[0]
        assert record["waits_ms"].get("migration", 0) > 0.0
        assert record["migration"]["granules"] >= 1
        total_tuples = sum(r["migration"]["tuples"] for r in migrated)
        assert total_tuples == 40

    def test_explain_analyze_reports_trace_ids(self):
        obs = Observability(slow_query_threshold=0.0)
        db = Database(obs=obs)
        session = db.connect()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (?, ?)", (1, 10))
        result = session.execute(
            "EXPLAIN ANALYZE SELECT v FROM t WHERE id = ?", (1,)
        )
        lines = [row[0] for row in result.rows]
        trace_lines = [l for l in lines if l.startswith("Trace:")]
        assert len(trace_lines) == 1
        # The printed ids are real: the trace they name is in the log.
        trace_id = int(
            trace_lines[0].split("trace_id=")[1].split()[0]
        )
        assert db.obs.trace.events_for_trace(trace_id)
