"""Property-based end-to-end checks: for randomized data and randomized
migration shapes, lazy migration (driven by randomized client queries +
background sweep) must reach exactly the state eager migration computes
in one shot.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BackgroundConfig, Database
from repro.core import ConflictMode, LazyMigrationEngine, EagerMigration

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_db(rows):
    db = Database()
    s = db.connect()
    s.execute(
        "CREATE TABLE src (id INT PRIMARY KEY, grp INT, v INT, w INT)"
    )
    s.execute("CREATE INDEX src_grp ON src (grp)")
    for i, (grp, v, w) in enumerate(rows):
        s.execute("INSERT INTO src VALUES (?, ?, ?, ?)", [i, grp, v, w])
    return db, s


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=40,
)

queries_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("id"), st.integers(min_value=0, max_value=45)),
        st.tuples(st.just("grp"), st.integers(min_value=0, max_value=6)),
        st.tuples(st.just("range"), st.integers(min_value=0, max_value=45)),
    ),
    max_size=8,
)

SPLIT_DDL = """
CREATE TABLE part_a (id INT PRIMARY KEY, v INT);
INSERT INTO part_a (id, v) SELECT id, v FROM src;
CREATE TABLE part_b (id INT PRIMARY KEY, grp INT, w INT);
INSERT INTO part_b (id, grp, w) SELECT id, grp, w FROM src;
"""

AGG_DDL = """
CREATE TABLE sums (grp INT PRIMARY KEY, total INT, n INT);
INSERT INTO sums (grp, total, n)
    SELECT grp, SUM(v), COUNT(*) FROM src GROUP BY grp;
"""


def run_lazy(rows, queries, ddl, table, conflict_mode):
    db, s = build_db(rows)
    engine = LazyMigrationEngine(
        db,
        background=BackgroundConfig(delay=0.01, chunk=16, interval=0.0),
        conflict_mode=conflict_mode,
    )
    handle = engine.submit("m", ddl)
    for kind, value in queries:
        if kind == "id" and table == "part_a":
            s.execute("SELECT v FROM part_a WHERE id = ?", [value])
        elif kind == "grp":
            if table == "sums":
                s.execute("SELECT total FROM sums WHERE grp = ?", [value])
            else:
                s.execute("SELECT w FROM part_b WHERE grp = ?", [value])
        elif kind == "range" and table == "part_a":
            s.execute("SELECT COUNT(v) FROM part_a WHERE id < ?", [value])
    assert handle.await_completion(timeout=60)
    if table == "sums":
        return sorted(s.execute("SELECT grp, total, n FROM sums").rows)
    return (
        sorted(s.execute("SELECT id, v FROM part_a").rows),
        sorted(s.execute("SELECT id, grp, w FROM part_b").rows),
    )


def run_eager(rows, ddl, table):
    db, s = build_db(rows)
    EagerMigration(db).submit("m", ddl)
    if table == "sums":
        return sorted(s.execute("SELECT grp, total, n FROM sums").rows)
    return (
        sorted(s.execute("SELECT id, v FROM part_a").rows),
        sorted(s.execute("SELECT id, grp, w FROM part_b").rows),
    )


@pytest.mark.slow
@_settings
@given(rows=rows_strategy, queries=queries_strategy)
def test_lazy_split_equals_eager(rows, queries):
    lazy = run_lazy(rows, queries, SPLIT_DDL, "part_a", ConflictMode.TRACKER)
    eager = run_eager(rows, SPLIT_DDL, "part_a")
    assert lazy == eager


@pytest.mark.slow
@_settings
@given(rows=rows_strategy, queries=queries_strategy)
def test_lazy_aggregate_equals_eager(rows, queries):
    lazy = run_lazy(rows, queries, AGG_DDL, "sums", ConflictMode.TRACKER)
    eager = run_eager(rows, AGG_DDL, "sums")
    assert lazy == eager


@pytest.mark.slow
@_settings
@given(rows=rows_strategy, queries=queries_strategy)
def test_on_conflict_mode_equals_eager(rows, queries):
    lazy = run_lazy(rows, queries, SPLIT_DDL, "part_a", ConflictMode.ON_CONFLICT)
    eager = run_eager(rows, SPLIT_DDL, "part_a")
    assert lazy == eager


@pytest.mark.slow
@_settings
@given(
    rows=rows_strategy,
    granule_size=st.sampled_from([1, 3, 8, 64]),
    queries=queries_strategy,
)
def test_any_granularity_equals_eager(rows, granule_size, queries):
    db, s = build_db(rows)
    engine = LazyMigrationEngine(
        db,
        background=BackgroundConfig(delay=0.01, chunk=16, interval=0.0),
        granule_size=granule_size,
    )
    handle = engine.submit("m", SPLIT_DDL)
    for kind, value in queries:
        if kind == "id":
            s.execute("SELECT v FROM part_a WHERE id = ?", [value])
    assert handle.await_completion(timeout=60)
    lazy = sorted(s.execute("SELECT id, v FROM part_a").rows)
    eager = run_eager(rows, SPLIT_DDL, "part_a")[0]
    assert lazy == eager
