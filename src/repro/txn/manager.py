"""Transactions: strict 2PL + undo-based abort + redo logging.

A :class:`Transaction` tracks held locks, an undo list of physical
inverse actions, and buffered redo records; COMMIT releases locks after
appending the redo batch, ABORT applies undo in reverse then runs the
registered abort hooks — which is where BullFrog resets the lock bits of
its in-progress migration granules (paper section 3.5).
"""

from __future__ import annotations

import itertools
import threading
from enum import Enum
from typing import Any, Callable, Hashable

from ..errors import TransactionAborted, TransactionError
from ..storage.tid import Tid
from ..storage.version import CommitStamp
from .locks import DeadlockPolicy, LockManager, LockMode
from .wal import LogOp, RedoLog

Row = tuple[Any, ...]


class TxnState(Enum):
    ACTIVE = "ACTIVE"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


class IsolationLevel(Enum):
    """Isolation modes offered by :meth:`TransactionManager.begin`.

    READ_COMMITTED is the pre-MVCC behavior: strict 2PL with short read
    locks.  SNAPSHOT reads a consistent version-chain snapshot taken at
    ``begin`` without read locks; writes still take 2PL write locks and
    conflict first-committer-wins (SQLSTATE 40001 on loss).
    """

    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"

    @classmethod
    def coerce(cls, value: "IsolationLevel | str | None") -> "IsolationLevel | None":
        if value is None or isinstance(value, cls):
            return value
        name = str(value).strip().lower().replace("-", "_")
        if name in ("snapshot", "si", "snapshot_isolation"):
            return cls.SNAPSHOT
        if name in ("read_committed", "2pl", "default"):
            return cls.READ_COMMITTED
        raise ValueError(f"unknown isolation level: {value!r}")


class Transaction:
    """One transaction.  Not thread-safe: a transaction belongs to the
    single worker driving it (workers cooperate through the shared lock
    manager and BullFrog's shared trackers, not by sharing transactions).
    """

    def __init__(
        self,
        txn_id: int,
        manager: "TransactionManager",
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        snapshot_ts: int | None = None,
    ) -> None:
        self.id = txn_id
        self.state = TxnState.ACTIVE
        self.isolation = isolation
        #: Snapshot timestamp (SNAPSHOT isolation only): this txn sees
        #: exactly the versions committed at or before this timestamp,
        #: plus its own writes.
        self.snapshot_ts = snapshot_ts
        #: Shared mutable stamp carried by every version this txn
        #: writes; commit assigns its timestamp once (publishing all of
        #: them atomically), abort marks it aborted.
        self.stamp = CommitStamp(txn_id=txn_id)
        self._manager = manager
        self._locks: list[Hashable] = []
        self._undo: list[Callable[[], None]] = []
        self._redo: list[tuple[LogOp, Any]] = []
        self._commit_hooks: list[Callable[[], None]] = []
        self._abort_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # State guards
    # ------------------------------------------------------------------
    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionAborted(
                f"transaction {self.id} is {self.state.value} and cannot be used"
            )

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    def lock_table(self, table_name: str, mode: LockMode) -> None:
        self._check_active()
        resource = ("table", table_name)
        try:
            if self._manager.locks.acquire(self.id, resource, mode):
                self._locks.append(resource)
        except TransactionAborted:
            self.abort()
            raise

    def lock_tuple(self, table_name: str, tid: Tid, mode: LockMode) -> None:
        self._check_active()
        resource = ("tuple", table_name, tid)
        try:
            if self._manager.locks.acquire(self.id, resource, mode):
                self._locks.append(resource)
        except TransactionAborted:
            self.abort()
            raise

    # ------------------------------------------------------------------
    # Undo / redo recording (called by the DML executor)
    # ------------------------------------------------------------------
    def record_insert(self, table, tid: Tid, row: Row) -> None:
        self._check_active()
        stamp = self.stamp
        self._undo.append(lambda: table.physical_unindex(tid, row, stamp=stamp))
        self._redo.append((LogOp.INSERT, (table.schema.name, tid, row)))

    def record_update(self, table, tid: Tid, old_row: Row, new_row: Row) -> None:
        self._check_active()
        stamp = self.stamp
        self._undo.append(lambda: table.physical_update(tid, old_row, stamp=stamp))
        self._redo.append((LogOp.UPDATE, (table.schema.name, tid, new_row)))

    def record_delete(self, table, tid: Tid, old_row: Row) -> None:
        self._check_active()
        stamp = self.stamp
        self._undo.append(lambda: table.physical_restore(tid, old_row, stamp=stamp))
        self._redo.append((LogOp.DELETE, (table.schema.name, tid, old_row)))

    def record_migration(self, migration_id: str, input_table: str, granules: tuple) -> None:
        """BullFrog: log which granules this txn migrated so recovery can
        rebuild the tracker (paper section 3.5)."""
        self._check_active()
        self._redo.append((LogOp.MIGRATE, (migration_id, input_table, granules)))

    def add_undo(self, action: Callable[[], None]) -> None:
        """Register an arbitrary physical inverse action (DDL paths)."""
        self._check_active()
        self._undo.append(action)

    def on_commit(self, hook: Callable[[], None]) -> None:
        self._check_active()
        self._commit_hooks.append(hook)

    def on_abort(self, hook: Callable[[], None]) -> None:
        self._check_active()
        self._abort_hooks.append(hook)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def commit(self) -> None:
        self._check_active()
        faults = self._manager.faults
        obs = self._manager.obs
        if obs is not None and obs.active:
            if obs.tracing_enabled and self._redo:
                # Read-only commits stay instant-free: the statement
                # span already bounds them, and one instant per
                # autocommit SELECT was a top line item in the <5%
                # tracing budget.  Write commits keep the instant (it
                # carries the redo size next to the wal.append span).
                obs.emit("txn.commit", txn_id=self.id, records=len(self._redo))
            else:
                obs.inc_txn_commit()
        try:
            if faults is not None and "txn.commit" in faults.watching:
                faults.fire("txn.commit", txn_id=self.id)
            if self._redo:
                self._manager.wal.append_batch(self.id, self._redo)
        except TransactionAborted:
            # An abort surfacing inside commit (fault injection, a
            # conflict at flush time) must not leave the transaction
            # ACTIVE with its locks held: roll back fully, then let the
            # caller see the abort.
            self.abort()
            raise
        if self._undo or self._redo:
            # Assign the commit timestamp while still holding write
            # locks: every version this txn wrote becomes visible to
            # future snapshots in one latched store.
            self._manager._assign_commit_ts(self.stamp)
        self.state = TxnState.COMMITTED
        self._release_locks()
        hooks, self._commit_hooks = self._commit_hooks, []
        for hook in hooks:
            hook()
        self._manager._finished(self)

    def abort(self) -> None:
        if self.state is TxnState.ABORTED:
            return
        if self.state is TxnState.COMMITTED:
            raise TransactionError(f"transaction {self.id} already committed")
        # Mark the stamp first: versions this txn wrote are permanently
        # invisible to snapshots (its ts is never assigned), and GC can
        # unlink them.
        self.stamp.aborted = True
        # Apply undo in reverse order (standard ARIES-style rollback).
        for action in reversed(self._undo):
            action()
        faults = self._manager.faults
        obs = self._manager.obs
        if obs is not None and obs.active:
            obs.emit("txn.abort", txn_id=self.id)
        if faults is not None and "txn.abort" in faults.watching:
            # Latency/callback only — FaultRule rejects raising actions
            # at txn.abort (an abort must not itself fail).
            faults.fire("txn.abort", txn_id=self.id)
        self._manager.wal.append_abort(self.id)
        self.state = TxnState.ABORTED
        self._release_locks()
        hooks, self._abort_hooks = self._abort_hooks, []
        # Abort hooks run AFTER the underlying undo completed — the
        # ordering the paper requires: "after the standard database
        # system code is run to handle the abort, BullFrog must inject
        # additional code that traverses the aborted worker's WIP list".
        for hook in hooks:
            hook()
        self._manager._finished(self)

    def _release_locks(self) -> None:
        self._manager.locks.release_all(self.id, self._locks)
        self._locks.clear()
        self._undo.clear()
        self._redo.clear()

    # Context-manager sugar: commits on success, aborts on exception.
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.is_active:
                self.commit()
        else:
            if self.is_active:
                self.abort()
        return False


class TransactionManager:
    """Issues transaction ids and owns the shared lock manager + WAL."""

    def __init__(
        self,
        lock_timeout: float = 10.0,
        deadlock_policy: DeadlockPolicy = DeadlockPolicy.DETECT,
    ) -> None:
        self.locks = LockManager(timeout=lock_timeout, policy=deadlock_policy)
        self.wal = RedoLog()
        # Optional fault injector (repro.core.faults.FaultInjector);
        # None in production — commit/abort guard with ``is not None``.
        self.faults: Any = None
        # Optional observability (repro.obs.Observability); same
        # zero-cost-when-detached contract as faults.
        self.obs: Any = None
        self._next_id = itertools.count(1)
        self._active: dict[int, Transaction] = {}
        self._latch = threading.Lock()
        # Global commit-timestamp clock.  0 is the bootstrap timestamp
        # (loader/DDL/replay writes); real commits start at 1.
        self._clock_latch = threading.Lock()
        self._last_commit_ts = 0

    def begin(
        self,
        isolation: IsolationLevel | str = IsolationLevel.READ_COMMITTED,
        snapshot_ts: int | None = None,
    ) -> Transaction:
        """Start a transaction.  For SNAPSHOT isolation, ``snapshot_ts``
        pins the snapshot (a caller that already read the clock — e.g.
        the statement interceptor — passes it so the snapshot and any
        derived state agree); by default the current clock is read."""
        level = IsolationLevel.coerce(isolation) or IsolationLevel.READ_COMMITTED
        if level is IsolationLevel.SNAPSHOT and snapshot_ts is None:
            snapshot_ts = self.current_ts()
        elif level is not IsolationLevel.SNAPSHOT:
            snapshot_ts = None
        txn = Transaction(
            next(self._next_id), self, isolation=level, snapshot_ts=snapshot_ts
        )
        with self._latch:
            self._active[txn.id] = txn
        return txn

    # ------------------------------------------------------------------
    # Commit-timestamp clock
    # ------------------------------------------------------------------
    def current_ts(self) -> int:
        """The newest assigned commit timestamp — a snapshot taken now
        sees exactly the transactions stamped at or before it."""
        with self._clock_latch:
            return self._last_commit_ts

    def _assign_commit_ts(self, stamp: CommitStamp) -> None:
        with self._clock_latch:
            self._last_commit_ts += 1
            stamp.ts = self._last_commit_ts

    def oldest_snapshot_ts(self) -> int:
        """GC horizon: the oldest snapshot any active transaction holds
        (versions older than the newest committed-before-horizon version
        of a tuple can never be read again)."""
        with self._latch:
            snapshots = [
                txn.snapshot_ts
                for txn in self._active.values()
                if txn.snapshot_ts is not None
            ]
        horizon = self.current_ts()
        if snapshots:
            horizon = min(horizon, min(snapshots))
        return horizon

    def _finished(self, txn: Transaction) -> None:
        with self._latch:
            self._active.pop(txn.id, None)

    @property
    def active_count(self) -> int:
        with self._latch:
            return len(self._active)
