"""Secondary indexes: hash (equality) and ordered (range).

Indexes map key tuples to sets of TIDs.  Uniqueness is enforced at
insert time for unique indexes; SQL semantics exempt keys containing
NULL.  A single latch per index keeps structural operations atomic;
transaction isolation is layered above by the lock manager.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterator

from ..errors import UniqueViolation
from .tid import Tid

Key = tuple[Any, ...]


class HashIndex:
    """Equality index: dict of key -> set of TIDs."""

    def __init__(self, name: str, table: str, columns: tuple[str, ...], unique: bool = False) -> None:
        self.name = name
        self.table = table
        self.columns = columns
        self.unique = unique
        self._entries: dict[Key, set[Tid]] = {}
        self._latch = threading.RLock()

    def __len__(self) -> int:
        with self._latch:
            return sum(len(tids) for tids in self._entries.values())

    @staticmethod
    def _has_null(key: Key) -> bool:
        return any(part is None for part in key)

    def insert(self, key: Key, tid: Tid) -> None:
        with self._latch:
            existing = self._entries.get(key)
            if self.unique and not self._has_null(key) and existing:
                raise UniqueViolation(
                    f"duplicate key {key!r} violates unique index {self.name}",
                    constraint=self.name,
                )
            if existing is None:
                self._entries[key] = {tid}
            else:
                existing.add(tid)

    def delete(self, key: Key, tid: Tid) -> None:
        with self._latch:
            tids = self._entries.get(key)
            if tids is None:
                return
            tids.discard(tid)
            if not tids:
                del self._entries[key]

    def lookup(self, key: Key) -> list[Tid]:
        with self._latch:
            return list(self._entries.get(key, ()))

    def contains(self, key: Key) -> bool:
        with self._latch:
            return bool(self._entries.get(key))

    def keys(self) -> list[Key]:
        with self._latch:
            return list(self._entries)

    def clear(self) -> None:
        with self._latch:
            self._entries.clear()


class _SortKey:
    """Total-order wrapper so heterogeneous/NULL keys sort deterministically.

    NULLs sort last (PostgreSQL default for ASC).  Values of different
    types compare by type name first — the engine never relies on
    cross-type ordering, this only keeps bisect from raising.
    """

    __slots__ = ("key",)

    def __init__(self, key: Key) -> None:
        self.key = tuple(
            (1, type(part).__name__, None) if part is None else (0, type(part).__name__, part)
            for part in key
        )

    def __lt__(self, other: "_SortKey") -> bool:
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.key == other.key


class OrderedIndex:
    """Range index over sorted (key, tid) pairs using bisect.

    Supports ``lookup`` (equality) and ``range_scan`` with optional
    inclusive/exclusive bounds, ascending order.
    """

    def __init__(self, name: str, table: str, columns: tuple[str, ...], unique: bool = False) -> None:
        self.name = name
        self.table = table
        self.columns = columns
        self.unique = unique
        self._sort_keys: list[_SortKey] = []
        self._pairs: list[tuple[Key, Tid]] = []
        self._latch = threading.RLock()

    def __len__(self) -> int:
        return len(self._pairs)

    def insert(self, key: Key, tid: Tid) -> None:
        sort_key = _SortKey(key)
        with self._latch:
            position = bisect.bisect_left(self._sort_keys, sort_key)
            if self.unique and not any(part is None for part in key):
                if position < len(self._pairs) and self._pairs[position][0] == key:
                    raise UniqueViolation(
                        f"duplicate key {key!r} violates unique index {self.name}",
                        constraint=self.name,
                    )
            self._sort_keys.insert(position, sort_key)
            self._pairs.insert(position, (key, tid))

    def delete(self, key: Key, tid: Tid) -> None:
        sort_key = _SortKey(key)
        with self._latch:
            position = bisect.bisect_left(self._sort_keys, sort_key)
            while position < len(self._pairs) and self._pairs[position][0] == key:
                if self._pairs[position][1] == tid:
                    del self._sort_keys[position]
                    del self._pairs[position]
                    return
                position += 1

    def lookup(self, key: Key) -> list[Tid]:
        sort_key = _SortKey(key)
        with self._latch:
            position = bisect.bisect_left(self._sort_keys, sort_key)
            result: list[Tid] = []
            while position < len(self._pairs) and self._pairs[position][0] == key:
                result.append(self._pairs[position][1])
                position += 1
            return result

    def contains(self, key: Key) -> bool:
        return bool(self.lookup(key))

    def range_scan(
        self,
        low: Key | None = None,
        high: Key | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Key, Tid]]:
        """Yield (key, tid) pairs with low <= key <= high (bounds optional).

        Snapshot-copies the matching span under the latch so callers can
        iterate without holding it.
        """
        with self._latch:
            if low is None:
                start = 0
            else:
                sk = _SortKey(low)
                start = (
                    bisect.bisect_left(self._sort_keys, sk)
                    if low_inclusive
                    else bisect.bisect_right(self._sort_keys, sk)
                )
            if high is None:
                stop = len(self._pairs)
            else:
                sk = _SortKey(high)
                stop = (
                    bisect.bisect_right(self._sort_keys, sk)
                    if high_inclusive
                    else bisect.bisect_left(self._sort_keys, sk)
                )
            span = list(self._pairs[start:stop])
        yield from span

    def prefix_scan(self, prefix: Key) -> Iterator[tuple[Key, Tid]]:
        """Yield (key, tid) for every entry whose key starts with
        ``prefix`` (a leading subset of the index columns)."""
        if not prefix:
            with self._latch:
                span = list(self._pairs)
            yield from span
            return
        width = len(prefix)
        low = _SortKey(prefix)
        with self._latch:
            start = bisect.bisect_left(self._sort_keys, low)
            stop = start
            n = len(self._pairs)
            while stop < n and self._pairs[stop][0][:width] == prefix:
                stop += 1
            span = list(self._pairs[start:stop])
        yield from span

    def keys(self) -> list[Key]:
        with self._latch:
            return [key for key, _tid in self._pairs]

    def clear(self) -> None:
        with self._latch:
            self._sort_keys.clear()
            self._pairs.clear()


Index = HashIndex | OrderedIndex
