"""SQL front end: tokenizer, AST, parser, and renderer."""

from .tokens import Token, TokenType, tokenize
from .parser import parse_expression, parse_script, parse_statement
from .render import render_expr, render_select, render_statement

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "parse_expression",
    "parse_script",
    "parse_statement",
    "render_expr",
    "render_select",
    "render_statement",
]
