"""Figure 6: latency CDFs during the aggregation migration."""

from repro.bench.experiments import fig6_aggregate_latency


def test_fig6_latency(benchmark, profile, record_figure):
    result = benchmark.pedantic(
        fig6_aggregate_latency,
        kwargs={
            "profile": profile,
            "systems": ("eager", "bullfrog-tracker"),
            "rates": ("low",),
        },
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert result.cdfs
