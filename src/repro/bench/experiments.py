"""One runner per paper figure (sections 4.1-4.5).

Every runner returns a :class:`FigureResult` whose ``lines`` are the
throughput series (figures 3/5/7/9/10/11/12) and whose ``cdfs`` are the
NewOrder latency samples (figures 4/6/8) — the same rows/series the
paper plots.  Runners accept a :class:`Profile` so the benchmarks can
run a quick smoke profile while EXPERIMENTS.md records a fuller one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from ..core import ConflictMode, Strategy
from ..tpcc import ScaleConfig
from .metrics import LatencySummary
from .report import render_cdf, render_timeseries, summary_rows
from .scenarios import (
    HIGH_RATE_FRACTION,
    LOW_RATE_FRACTION,
    ExperimentConfig,
    ExperimentResult,
    run_migration_experiment,
)


@dataclass
class Profile:
    """Run sizing shared by all figure runners."""

    scale: ScaleConfig = field(default_factory=ScaleConfig.small)
    duration: float = 8.0
    migrate_at: float = 2.0
    workers: int = 3
    background_delay: float = 1.5
    seed: int = 42
    # Attach repro.obs to every run in the figure; the FigureResult then
    # carries per-system registry snapshots (embedded in JSON reports).
    observability: bool = False

    @staticmethod
    def quick() -> "Profile":
        """Smoke profile: each run finishes in well under 10 seconds."""
        return Profile(
            scale=ScaleConfig.small(),
            duration=5.0,
            migrate_at=1.0,
            workers=2,
            background_delay=1.0,
        )

    @staticmethod
    def paper() -> "Profile":
        """Scaled-down analogue of the paper's runs (minutes, not hours)."""
        return Profile(
            scale=ScaleConfig(),
            duration=30.0,
            migrate_at=6.0,
            workers=4,
            background_delay=4.0,
        )


@dataclass
class FigureResult:
    figure: str
    title: str
    lines: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    cdfs: dict[str, list[float]] = field(default_factory=dict)
    events: dict[str, list[tuple[float, str]]] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    # Per-system registry snapshots (observability-enabled runs only).
    registry: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"=== {self.figure}: {self.title} ==="]
        if self.lines:
            parts.append(render_timeseries(self.lines, self.events))
        if self.cdfs:
            parts.append(render_cdf(self.cdfs, title="Latency CDFs (NewOrder)"))
        if self.meta:
            for key, value in self.meta.items():
                parts.append(f"  {key}: {value}")
        return "\n".join(parts)

    def latency_summaries(self) -> list[dict[str, Any]]:
        return summary_rows(self.cdfs)


# ======================================================================
# Shared machinery: strategy comparison on one scenario (figs 3-8)
# ======================================================================

SYSTEMS: dict[str, dict[str, Any]] = {
    "eager": {"strategy": Strategy.EAGER},
    "multistep": {"strategy": Strategy.MULTISTEP},
    "bullfrog-tracker": {
        "strategy": Strategy.LAZY,
        "conflict_mode": ConflictMode.TRACKER,
    },
    "bullfrog-onconflict": {
        "strategy": Strategy.LAZY,
        "conflict_mode": ConflictMode.ON_CONFLICT,
    },
    "bullfrog-nobackground": {
        "strategy": Strategy.LAZY,
        "conflict_mode": ConflictMode.TRACKER,
        "background_enabled": False,
    },
}

_RATE_FRACTIONS = {"low": LOW_RATE_FRACTION, "high": HIGH_RATE_FRACTION}


def run_strategy_comparison(
    scenario: str,
    profile: Profile,
    systems: Sequence[str],
    rates: Sequence[str] = ("low",),
    tracker_override: str | None = None,
) -> dict[str, ExperimentResult]:
    """Run each (system, rate) pair once; keys are ``system@rate``."""
    results: dict[str, ExperimentResult] = {}
    for rate_name in rates:
        for system in systems:
            options = dict(SYSTEMS[system])
            background_enabled = options.pop("background_enabled", True)
            config = ExperimentConfig(
                scenario=scenario,
                scale=profile.scale,
                duration=profile.duration,
                migrate_at=profile.migrate_at,
                workers=profile.workers,
                background_delay=profile.background_delay,
                background_enabled=background_enabled,
                rate_fraction=_RATE_FRACTIONS[rate_name],
                seed=profile.seed,
                observability=profile.observability,
                **options,
            )
            results[f"{system}@{rate_name}"] = run_migration_experiment(config)
    return results


def _comparison_figure(
    figure: str,
    title: str,
    results: dict[str, ExperimentResult],
    latency_txn: str | None = "new_order",
) -> FigureResult:
    out = FigureResult(figure, title)
    for name, result in results.items():
        out.lines[name] = result.throughput
        out.cdfs[name] = result.latencies(latency_txn)
        events = [(result.migration_started_at, "migration start")]
        if result.migration_completed_at is not None:
            events.append((result.migration_completed_at, "migration end"))
        if result.background_started_at is not None:
            events.append((result.background_started_at, "background start"))
        out.events[name] = [(t, label) for t, label in events if t is not None]
        out.meta[f"{name}.max_tps"] = round(result.max_tps, 1)
        out.meta[f"{name}.rate"] = round(result.rate, 1)
        out.meta[f"{name}.stats"] = {
            k: v
            for k, v in result.migration_stats.items()
            if k in ("tuples_migrated", "skip_waits", "aborts", "duplicates", "complete")
        }
        if result.registry_snapshot is not None:
            out.registry[name] = result.registry_snapshot
    return out


# ======================================================================
# Figures 3-4: table split
# ======================================================================


def fig3_table_split_throughput(
    profile: Profile | None = None,
    systems: Sequence[str] = ("eager", "multistep", "bullfrog-tracker", "bullfrog-onconflict"),
    rates: Sequence[str] = ("low", "high"),
) -> FigureResult:
    profile = profile or Profile.quick()
    results = run_strategy_comparison("split", profile, systems, rates)
    return _comparison_figure(
        "Figure 3", "Throughput during table-split migration", results
    )


def fig4_table_split_latency(
    profile: Profile | None = None,
    systems: Sequence[str] = ("eager", "multistep", "bullfrog-tracker"),
    rates: Sequence[str] = ("low", "high"),
) -> FigureResult:
    profile = profile or Profile.quick()
    results = run_strategy_comparison("split", profile, systems, rates)
    figure = _comparison_figure(
        "Figure 4", "Latency CDFs during table-split migration", results
    )
    figure.lines = {}  # latency figure: CDFs only
    return figure


# ======================================================================
# Figures 5-6: aggregate migration
# ======================================================================


def fig5_aggregate_throughput(
    profile: Profile | None = None,
    systems: Sequence[str] = ("eager", "multistep", "bullfrog-tracker"),
    rates: Sequence[str] = ("low", "high"),
) -> FigureResult:
    profile = profile or Profile.quick()
    results = run_strategy_comparison("aggregate", profile, systems, rates)
    return _comparison_figure(
        "Figure 5", "Throughput during aggregation migration (hashmap n:1)", results
    )


def fig6_aggregate_latency(
    profile: Profile | None = None,
    systems: Sequence[str] = ("eager", "multistep", "bullfrog-tracker"),
    rates: Sequence[str] = ("low", "high"),
) -> FigureResult:
    profile = profile or Profile.quick()
    results = run_strategy_comparison("aggregate", profile, systems, rates)
    figure = _comparison_figure(
        "Figure 6", "Latency CDFs during aggregation migration", results
    )
    figure.lines = {}
    return figure


# ======================================================================
# Figures 7-8: join migration
# ======================================================================


def fig7_join_throughput(
    profile: Profile | None = None,
    systems: Sequence[str] = ("eager", "multistep", "bullfrog-tracker"),
    rates: Sequence[str] = ("low", "high"),
) -> FigureResult:
    profile = profile or Profile.quick()
    results = run_strategy_comparison("join", profile, systems, rates)
    return _comparison_figure(
        "Figure 7", "Throughput during join migration (hashmap n:n)", results
    )


def fig8_join_latency(
    profile: Profile | None = None,
    systems: Sequence[str] = ("eager", "multistep", "bullfrog-tracker"),
    rates: Sequence[str] = ("low", "high"),
) -> FigureResult:
    profile = profile or Profile.quick()
    results = run_strategy_comparison("join", profile, systems, rates)
    figure = _comparison_figure(
        "Figure 8", "Latency CDFs during join migration", results
    )
    figure.lines = {}
    return figure


# ======================================================================
# Figure 9: data-structure maintenance cost (section 4.4.1)
# ======================================================================


def fig9_tracking_overhead(profile: Profile | None = None) -> FigureResult:
    """BullFrog with the bitmap vs. a variant with tracking disabled,
    under a disjoint access pattern (every tuple accessed once)."""
    profile = profile or Profile.quick()
    results: dict[str, ExperimentResult] = {}
    for name, tracking in (("bullfrog-bitmap", True), ("bullfrog-nobitmap", False)):
        config = ExperimentConfig(
            scenario="split",
            scale=profile.scale,
            duration=profile.duration,
            migrate_at=profile.migrate_at,
            workers=profile.workers,
            background_delay=profile.background_delay,
            rate_fraction=LOW_RATE_FRACTION,
            seed=profile.seed,
            strategy=Strategy.LAZY,
            tracking_enabled=tracking,
            observability=profile.observability,
            # Section 4.4.1: the application is modified so transactions
            # "cumulatively access each tuple in the old schema exactly
            # once, rendering migration status tracking unnecessary" —
            # per-worker disjoint customer strides.
            disjoint_customers=True,
        )
        results[name] = run_migration_experiment(config)
    figure = _comparison_figure(
        "Figure 9", "Data structure maintenance cost", results
    )
    return figure


# ======================================================================
# Figure 10: skewed access / lock contention (section 4.4.2)
# ======================================================================


def fig10_contention(
    profile: Profile | None = None,
    hot_fractions: Sequence[float] = (1.0, 0.01, 0.002),
) -> FigureResult:
    """Hot-set sweep: the paper's 1.5M / 15k / 3k customers out of 1.5M."""
    profile = profile or Profile.quick()
    total_per_district = profile.scale.customers_per_district
    results: dict[str, ExperimentResult] = {}
    for fraction in hot_fractions:
        hot = max(1, int(total_per_district * fraction))
        config = ExperimentConfig(
            scenario="split",
            scale=profile.scale,
            duration=profile.duration,
            migrate_at=profile.migrate_at,
            workers=profile.workers,
            background_delay=profile.background_delay,
            rate_fraction=HIGH_RATE_FRACTION,
            hot_customers=None if fraction >= 1.0 else hot,
            seed=profile.seed,
            observability=profile.observability,
        )
        label = f"hot={'all' if fraction >= 1.0 else hot}"
        results[label] = run_migration_experiment(config)
    figure = _comparison_figure("Figure 10", "Skewed data access", results)
    for label, result in results.items():
        figure.meta[f"{label}.skip_waits"] = result.migration_stats.get("skip_waits")
    return figure


# ======================================================================
# Figure 11: migration granularity (section 4.4.3)
# ======================================================================


def fig11_granularity(
    profile: Profile | None = None,
    granule_sizes: Sequence[int] = (1, 64, 128, 256),
    hot_fractions: Sequence[float] = (1.0, 0.01),
    rates: Sequence[str] = ("high",),
) -> FigureResult:
    profile = profile or Profile.quick()
    total_per_district = profile.scale.customers_per_district
    results: dict[str, ExperimentResult] = {}
    for rate_name in rates:
        for fraction in hot_fractions:
            hot = max(1, int(total_per_district * fraction))
            for granule in granule_sizes:
                config = ExperimentConfig(
                    scenario="split",
                    scale=profile.scale,
                    duration=profile.duration,
                    migrate_at=profile.migrate_at,
                    workers=profile.workers,
                    background_delay=profile.background_delay,
                    rate_fraction=_RATE_FRACTIONS[rate_name],
                    hot_customers=None if fraction >= 1.0 else hot,
                    granule_size=granule,
                    seed=profile.seed,
                    observability=profile.observability,
                )
                label = (
                    f"page={granule},hot="
                    f"{'all' if fraction >= 1.0 else hot}@{rate_name}"
                )
                results[label] = run_migration_experiment(config)
    figure = _comparison_figure(
        "Figure 11", "Access skew x migration granularity", results
    )
    for label, result in results.items():
        if result.migration_completed_at and result.migration_started_at:
            figure.meta[f"{label}.migration_seconds"] = round(
                result.migration_completed_at - result.migration_started_at, 2
            )
    return figure


# ======================================================================
# Figure 12: integrity constraints (section 4.5)
# ======================================================================

_FK_LABELS = {
    "none": "PK: Customer",
    "district": "PK: Customer, FK: District",
    "district_orders": "PK: Customer, FK: Order, District",
}

_CUSTOMER_ONLY = ("new_order", "payment", "delivery", "order_status")


def fig12_constraints(
    profile: Profile | None = None,
    fk_variants: Sequence[str] = ("none", "district", "district_orders"),
    workloads: Sequence[str] = ("full", "customer_only"),
) -> FigureResult:
    profile = profile or Profile.quick()
    results: dict[str, ExperimentResult] = {}
    for workload in workloads:
        for fk_variant in fk_variants:
            config = ExperimentConfig(
                scenario="split",
                scale=profile.scale,
                duration=profile.duration,
                migrate_at=profile.migrate_at,
                workers=profile.workers,
                background_delay=profile.background_delay,
                rate_fraction=LOW_RATE_FRACTION,
                fk_variant=fk_variant,
                transaction_filter=(
                    _CUSTOMER_ONLY if workload == "customer_only" else None
                ),
                seed=profile.seed,
                observability=profile.observability,
            )
            label = f"{_FK_LABELS[fk_variant]} ({workload})"
            results[label] = run_migration_experiment(config)
    return _comparison_figure(
        "Figure 12", "FOREIGN KEY constraints on table-split migration", results
    )


ALL_FIGURES = {
    "fig3": fig3_table_split_throughput,
    "fig4": fig4_table_split_latency,
    "fig5": fig5_aggregate_throughput,
    "fig6": fig6_aggregate_latency,
    "fig7": fig7_join_throughput,
    "fig8": fig8_join_latency,
    "fig9": fig9_tracking_overhead,
    "fig10": fig10_contention,
    "fig11": fig11_granularity,
    "fig12": fig12_constraints,
}
