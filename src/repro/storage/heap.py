"""Heap tables: append-only pages of tuples addressed by TIDs.

The heap is purely physical — it knows nothing about schemas or
constraints.  Thread safety: a single re-entrant latch protects the page
directory; logical isolation between transactions is the lock manager's
job (``repro.txn``), exactly as in a real engine where short page
latches and long transaction locks are separate mechanisms.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from .page import DEFAULT_PAGE_CAPACITY, Page, Row
from .tid import Tid


class HeapTable:
    """A heap of slotted pages.

    TIDs are stable: deletes tombstone, they never compact.  This is what
    lets the BullFrog bitmap address tuples by dense ordinal.
    """

    def __init__(self, name: str, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        self.name = name
        self.page_capacity = page_capacity
        self._pages: list[Page] = []
        self._latch = threading.RLock()
        self._live_count = 0

    # ------------------------------------------------------------------
    # Size / addressing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._live_count

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def max_ordinal(self) -> int:
        """One past the largest ordinal ever allocated (bitmap sizing)."""
        with self._latch:
            if not self._pages:
                return 0
            last = self._pages[-1]
            return last.number * self.page_capacity + len(last)

    def ordinal(self, tid: Tid) -> int:
        return tid.ordinal(self.page_capacity)

    def tid_from_ordinal(self, ordinal: int) -> Tid:
        return Tid.from_ordinal(ordinal, self.page_capacity)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> Tid:
        """Append a tuple; returns its TID."""
        with self._latch:
            if not self._pages or self._pages[-1].is_full:
                self._pages.append(Page(len(self._pages), self.page_capacity))
            page = self._pages[-1]
            slot = page.append(row)
            self._live_count += 1
            return Tid(page.number, slot)

    def read(self, tid: Tid) -> Row | None:
        """Return the tuple at ``tid`` (None if tombstoned).  Raises
        IndexError for an address that was never allocated."""
        with self._latch:
            return self._pages[tid.page].read(tid.slot)

    def update(self, tid: Tid, row: Row) -> Row:
        """Overwrite the tuple at ``tid``; returns the previous row."""
        with self._latch:
            page = self._pages[tid.page]
            old = page.read(tid.slot)
            if old is None:
                raise RuntimeError(f"tuple {tid} of {self.name} is deleted")
            page.write(tid.slot, row)
            return old

    def delete(self, tid: Tid) -> Row:
        """Tombstone the tuple at ``tid``; returns the old row."""
        with self._latch:
            old = self._pages[tid.page].delete(tid.slot)
            self._live_count -= 1
            return old

    def restore(self, tid: Tid, row: Row) -> None:
        """Undo a delete (abort path)."""
        with self._latch:
            self._pages[tid.page].restore(tid.slot, row)
            self._live_count += 1

    def insert_at(self, tid: Tid, row: Row) -> None:
        """REDO replay: place ``row`` at exactly ``tid``, materializing
        any pages/slots in between as tombstones, so recovered TIDs
        match the pre-crash ones (UPDATE/DELETE records address them)."""
        with self._latch:
            while len(self._pages) <= tid.page:
                self._pages.append(Page(len(self._pages), self.page_capacity))
            # Earlier pages skipped by this insert are full by definition.
            for page in self._pages[: tid.page]:
                page.pad_to_capacity()
            self._pages[tid.page].place(tid.slot, row)
            self._live_count += 1

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[Tid, Row]]:
        """Yield (tid, row) for all live tuples.

        Takes a snapshot of the page list under the latch, then walks it
        latch-free; pages themselves are only appended to, and slot
        mutation is atomic at Python level (single list-item store), so a
        scan always sees a consistent slot value — transaction-level
        consistency comes from the lock manager.
        """
        with self._latch:
            pages = list(self._pages)
        for page in pages:
            for slot, row in page.iter_live():
                yield Tid(page.number, slot), row

    def scan_range(self, start_ordinal: int, end_ordinal: int) -> Iterator[tuple[Tid, Row]]:
        """Yield live tuples whose ordinal is in [start, end).  Used by
        background migration threads to walk the table in chunks."""
        with self._latch:
            pages = list(self._pages)
        first_page = start_ordinal // self.page_capacity
        last_page = (max(end_ordinal - 1, 0)) // self.page_capacity
        for page in pages[first_page : last_page + 1]:
            base = page.number * self.page_capacity
            for slot, row in page.iter_live():
                ordinal = base + slot
                if start_ordinal <= ordinal < end_ordinal:
                    yield Tid(page.number, slot), row

    def clear(self) -> None:
        """Drop all pages (table truncation / drop)."""
        with self._latch:
            self._pages.clear()
            self._live_count = 0
