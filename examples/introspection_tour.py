"""Tour of the in-database introspection surface.

Everything here is reachable through *plain SQL on an ordinary
session* — no Python-side hooks: ``EXPLAIN [ANALYZE]`` as a statement,
and the four ``bullfrog_stat_*`` system views sampled while a TPC-C
customer-split migration is in flight.  Writes the artifacts CI
uploads:

* ``results/introspection_explain.txt`` — EXPLAIN and EXPLAIN ANALYZE
  output for the same query before and after its granule migrated,
  showing per-operator rows/loops/time and the migrate-stall summary
  line;
* ``results/introspection_views.json`` — timestamped samples of all
  four system views taken mid-migration (the shape a dashboard
  scraping the views would see).

Run with::

    PYTHONPATH=src python examples/introspection_tour.py
"""

import json
import os

from repro import Database
from repro.core import BackgroundConfig, MigrationController, Strategy
from repro.obs import Observability
from repro.tpcc import ScaleConfig, create_schema, load_tpcc, split_migration_ddl

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")

SCALE = ScaleConfig(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=40,
    items=50,
    initial_orders_per_district=20,
)

VIEWS = (
    "bullfrog_stat_activity",
    "bullfrog_stat_migrations",
    "bullfrog_stat_locks",
    "bullfrog_stat_statements",
)

QUERY = (
    "SELECT c_balance FROM customer_private "
    "WHERE c_w_id = 1 AND c_d_id = 1 AND c_id = 5"
)


def plan_text(session, sql):
    return "\n".join(row[0] for row in session.execute(sql).rows)


def main() -> None:
    obs = Observability(metrics=True, tracing=False, sample_statements=1)
    db = Database(obs=obs)
    session = db.connect()
    create_schema(session)
    load_tpcc(db, SCALE)

    controller = MigrationController(db)
    controller.submit(
        "customer-split",
        split_migration_ddl(),
        strategy=Strategy.LAZY,
        background=BackgroundConfig(enabled=False),
    )

    sections = []
    sections.append("== EXPLAIN (new schema live, nothing migrated yet) ==")
    sections.append(plan_text(session, f"EXPLAIN {QUERY}"))
    sections.append("")
    sections.append("== EXPLAIN ANALYZE (first touch: pays the migrate stall) ==")
    sections.append(plan_text(session, f"EXPLAIN ANALYZE {QUERY}"))
    sections.append("")
    sections.append("== EXPLAIN ANALYZE again (granule already migrated) ==")
    sections.append(plan_text(session, f"EXPLAIN ANALYZE {QUERY}"))
    explain_out = "\n".join(sections)

    # Touch more customers so the views show a migration in flight.
    for c_id in range(1, 15):
        session.execute(
            "SELECT c_balance FROM customer_private "
            "WHERE c_w_id = 1 AND c_d_id = 1 AND c_id = ?",
            [c_id],
        )
    samples = {
        view: session.execute(f"SELECT * FROM {view}").dicts() for view in VIEWS
    }
    progress = controller.engine.progress()

    os.makedirs(RESULTS, exist_ok=True)
    explain_path = os.path.join(RESULTS, "introspection_explain.txt")
    with open(explain_path, "w") as fh:
        fh.write(explain_out + "\n")
    views_path = os.path.join(RESULTS, "introspection_views.json")
    with open(views_path, "w") as fh:
        json.dump({"views": samples, "progress": progress}, fh, indent=2, default=str)

    print(explain_out)
    print()
    migration_rows = samples["bullfrog_stat_migrations"]
    for row in migration_rows:
        print(
            f"migration {row['migration']} unit={row['unit']}: "
            f"{row['granules_migrated']}/{row['granules_total']} granules "
            f"(fraction={row['fraction']}, eta={row['eta_seconds']})"
        )
    print(f"wrote {explain_path}")
    print(f"wrote {views_path}")

    # Sanity: the artifacts must show what the docs promise.
    assert "Lazy Migration: stall=" in explain_out
    assert "actual time=" in explain_out
    assert migration_rows and all(
        0.0 <= row["fraction"] <= 1.0 for row in migration_rows
    )
    controller.active.shutdown()


if __name__ == "__main__":
    main()
