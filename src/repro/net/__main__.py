"""``python -m repro.net`` — run a standalone ``bullfrogd``.

Serves a fresh in-memory database (optionally pre-loaded with a tiny
TPC-C data set for demos and the CI smoke) until interrupted.

::

    python -m repro.net --port 5433
    python -m repro.net --port 5433 --load-tpcc 1 --statement-timeout 30
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from ..db import Database
from ..obs import Observability
from .server import BullfrogServer, ServerConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net", description="bullfrogd: BullFrog over TCP"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433)
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument("--backlog", type=int, default=16)
    parser.add_argument("--idle-timeout", type=float, default=None)
    parser.add_argument("--statement-timeout", type=float, default=None)
    parser.add_argument("--drain-timeout", type=float, default=5.0)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="permanent execution workers behind the event loop",
    )
    parser.add_argument(
        "--max-workers", type=int, default=64,
        help="elastic worker ceiling (lock waits can park workers)",
    )
    parser.add_argument(
        "--load-tpcc", type=int, metavar="WAREHOUSES", default=None,
        help="pre-load a small TPC-C data set with N warehouses",
    )
    args = parser.parse_args(argv)

    db = Database(obs=Observability())
    if args.load_tpcc is not None:
        from ..tpcc import ScaleConfig, create_schema, load_tpcc

        scale = ScaleConfig(
            warehouses=args.load_tpcc,
            districts_per_warehouse=2,
            customers_per_district=30,
            items=50,
            initial_orders_per_district=30,
        )
        session = db.connect()
        create_schema(session)
        load_tpcc(db, scale)
        print(f"loaded TPC-C: {args.load_tpcc} warehouse(s)", flush=True)

    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        backlog=args.backlog,
        idle_timeout=args.idle_timeout,
        statement_timeout=args.statement_timeout,
        drain_timeout=args.drain_timeout,
        workers=args.workers,
        max_workers=args.max_workers,
    )
    server = BullfrogServer(db, config).start()
    print(f"bullfrogd listening on {args.host}:{server.port}", flush=True)

    stop = threading.Event()

    def _sigterm(signum, frame):  # noqa: ANN001 - signal handler shape
        stop.set()

    signal.signal(signal.SIGINT, _sigterm)
    signal.signal(signal.SIGTERM, _sigterm)
    stop.wait()
    print("draining...", flush=True)
    outcome = server.shutdown()
    print(
        f"shutdown: {outcome['drained']} drained, "
        f"{outcome['aborted']} aborted",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
