"""SQL tokenizer.

Produces a flat list of :class:`Token` objects for the recursive-descent
parser in :mod:`repro.sql.parser`.  Keywords are case-insensitive;
identifiers are normalized to lower case (PostgreSQL behaviour) unless
double-quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import TokenizeError


class TokenType(Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    PARAM = "PARAM"  # a '?' placeholder
    EOF = "EOF"


KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON USING
    JOIN INNER LEFT RIGHT FULL OUTER CROSS
    AND OR NOT IN IS NULL BETWEEN LIKE EXISTS
    CREATE TABLE VIEW INDEX UNIQUE PRIMARY KEY FOREIGN REFERENCES CHECK
    DEFAULT CONSTRAINT
    INSERT INTO VALUES UPDATE SET DELETE
    DROP ALTER ADD COLUMN RENAME TO IF
    BEGIN COMMIT ROLLBACK ABORT TRANSACTION
    DISTINCT ALL ASC DESC
    CASE WHEN THEN ELSE END
    FOR
    TRUE FALSE
    CAST EXTRACT
    CONFLICT DO NOTHING
    ASC DESC
    COUNT SUM AVG MIN MAX
    EXPLAIN ANALYZE
    """.split()
)

# Multi-character operators must be listed longest-first.
_OPERATORS = ("<>", "!=", ">=", "<=", "||", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = ("(", ")", ",", ";", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` holds the normalized text: upper case for keywords, lower
    case for unquoted identifiers, the literal value for numbers/strings.
    """

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list of tokens terminated by an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        # -- whitespace ------------------------------------------------
        if ch.isspace():
            i += 1
            continue
        # -- line comments ---------------------------------------------
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        # -- block comments ----------------------------------------------
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise TokenizeError("unterminated block comment", i)
            i = end + 2
            continue
        # -- string literals ---------------------------------------------
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        # -- quoted identifiers -------------------------------------------
        if ch == '"':
            end = sql.find('"', i + 1)
            if end == -1:
                raise TokenizeError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : end], i))
            i = end + 1
            continue
        # -- numbers -------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            while i < n and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            if i < n and sql[i] in "eE":
                j = i + 1
                if j < n and sql[j] in "+-":
                    j += 1
                if j < n and sql[j].isdigit():
                    i = j
                    while i < n and sql[i].isdigit():
                        i += 1
            text = sql[start:i]
            if text.count(".") > 1:
                raise TokenizeError(f"malformed number {text!r}", start)
            tokens.append(Token(TokenType.NUMBER, text, start))
            continue
        # -- parameters -------------------------------------------------
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, "?", i))
            i += 1
            continue
        # -- identifiers / keywords --------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word.lower(), start))
            continue
        # -- operators ----------------------------------------------------
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                break
        else:
            if ch in _PUNCT:
                tokens.append(Token(TokenType.PUNCT, ch, i))
                i += 1
            else:
                raise TokenizeError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string literal starting at ``start``.

    Doubled quotes ('') escape a quote, per the SQL standard.
    """
    parts: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise TokenizeError("unterminated string literal", start)
