"""Protocol + loopback overhead of ``bullfrogd`` vs the embedded engine.

Five measurements, written to ``results/net_bench.json`` (the CI
``network`` job uploads it as an artifact):

* **single-client latency** — the same point-SELECT / point-UPDATE mix
  timed embedded (``db.connect()``), networked with per-statement
  parsing, networked **prepared** (implicit statement cache → EXECUTE
  frames, no parser), and networked **pipelined** (batches of
  ``PIPELINE_DEPTH`` prepared statements per write).  The
  prepared-vs-parsed and pipelined-vs-serial deltas are the payoff of
  the PARSE/BIND/EXECUTE protocol extension.
* **1→64-client scaling** — closed-loop aggregate throughput against
  one event-loop server (the GIL bounds CPU parallelism; the point is
  that adding clients must not *collapse* throughput, and that 64
  clients no longer need 64 server threads).
* **idle-connection capacity** — 1000 parked connections held by the
  single I/O thread, with probe-ping latency measured while they sit
  there; the thread-per-connection server burned a thread each.
* **TPC-C-through-migration** — 16 auto-prepared socket clients run
  the TPC-C mix while a backwards-incompatible lazy SPLIT migration
  completes underneath them.
* **embedded TPC-C reference** — the identical workload + migration on
  in-process sessions, giving the true wire overhead at 16 clients
  (``embedded_tps / networked_tps``).

The PR-5 thread-per-connection baseline (committed
``results/net_bench.json`` before this change) is embedded as
``pr5_baseline`` so the JSON itself documents the before/after.

Run standalone (``PYTHONPATH=src python benchmarks/bench_net_overhead.py``)
or under pytest — same code path, pytest just asserts the structural
expectations instead of only printing.  ``BULLFROG_NET_SMOKE=1``
shrinks every knob for CI.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time

from repro import Database
from repro.bench.driver import DriverConfig, WorkloadDriver
from repro.core import BackgroundConfig, MigrationController, Strategy
from repro.errors import SchemaVersionError
from repro.net import BullfrogServer, NetworkTpccClient, ServerConfig, connect
from repro.obs import Observability
from repro.testing import InvariantChecker
from repro.tpcc import (
    SCENARIOS,
    ScaleConfig,
    SchemaVariant,
    TpccClient,
    create_schema,
    load_tpcc,
)

SMOKE = os.environ.get("BULLFROG_NET_SMOKE") == "1"

ROWS = 400
LATENCY_OPS = 200 if SMOKE else 600
PIPELINE_DEPTH = 16
SCALING_SECONDS = 1.0 if SMOKE else 2.0
SCALING_CLIENTS = (1, 4, 16) if SMOKE else (1, 4, 8, 16, 32, 64)
IDLE_CONNECTIONS = 100 if SMOKE else 1000
TPCC_SECONDS = 3.0 if SMOKE else 6.0
TPCC_CLIENTS = 8 if SMOKE else 16

# The committed thread-per-connection numbers this PR replaces
# (results/net_bench.json as of PR 5, this machine).
PR5_BASELINE = {
    "server": "thread-per-connection",
    "single_client_overhead_ratio_mean": 4.18,
    "single_client_networked_mean_us": 87.1,
    "scaling_16_clients_ops_per_sec": 11199.8,
    "tpcc_clients": 8,
    "tpcc_tps": 299.5,
}

TINY_SCALE = ScaleConfig(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=20,
    items=30,
    initial_orders_per_district=20,
)


def _seed_kv(db: Database) -> None:
    s = db.connect()
    s.execute("CREATE TABLE kv (id INT PRIMARY KEY, v INT)")
    for i in range(ROWS):
        s.execute("INSERT INTO kv VALUES (?, ?)", (i, i))


def _op(i: int) -> tuple[str, tuple]:
    key = (i * 17) % ROWS
    if i % 4 == 3:
        return "UPDATE kv SET v = v + 1 WHERE id = ?", (key,)
    return "SELECT v FROM kv WHERE id = ?", (key,)


def _run_ops(execute, ops: int) -> list[float]:
    """The measured mix: 3 point SELECTs + 1 point UPDATE per round."""
    samples = []
    for i in range(ops):
        sql, params = _op(i)
        began = time.perf_counter()
        execute(sql, params)
        samples.append(time.perf_counter() - began)
    return samples


def _run_pipelined(conn, ops: int, depth: int) -> list[float]:
    """Same mix, ``depth`` statements per batch; per-op latency is the
    batch round trip amortized over its statements."""
    samples = []
    for start in range(0, ops, depth):
        pipe = conn.pipeline()
        for i in range(start, min(start + depth, ops)):
            pipe.execute(*_op(i))
        began = time.perf_counter()
        pipe.sync()
        elapsed = time.perf_counter() - began
        samples.extend([elapsed / len(pipe.results)] * len(pipe.results))
    return samples


def _latency_stats(samples: list[float]) -> dict:
    samples = sorted(samples)
    return {
        "ops": len(samples),
        "mean_us": statistics.fmean(samples) * 1e6,
        "p50_us": samples[len(samples) // 2] * 1e6,
        "p99_us": samples[int(len(samples) * 0.99)] * 1e6,
    }


def bench_single_client() -> dict:
    db = Database()
    _seed_kv(db)
    session = db.connect()
    _run_ops(session.execute, 100)  # warm caches on the shared db
    embedded = _latency_stats(_run_ops(session.execute, LATENCY_OPS))

    srv = BullfrogServer(db, ServerConfig(port=0)).start()
    try:
        with connect("127.0.0.1", srv.port) as conn:
            _run_ops(conn.execute, 100)
            parsed = _latency_stats(_run_ops(conn.execute, LATENCY_OPS))
        with connect("127.0.0.1", srv.port, auto_prepare=8) as conn:
            _run_ops(conn.execute, 100)  # fills the statement cache
            prepared = _latency_stats(_run_ops(conn.execute, LATENCY_OPS))
            pipelined = _latency_stats(
                _run_pipelined(conn, LATENCY_OPS, PIPELINE_DEPTH)
            )
    finally:
        srv.shutdown(drain_timeout=1.0)

    def ratio(stats: dict) -> float:
        return stats["mean_us"] / embedded["mean_us"]

    return {
        "embedded": embedded,
        "networked": parsed,
        "prepared": prepared,
        "pipelined": pipelined,
        "pipeline_depth": PIPELINE_DEPTH,
        "overhead_us_mean": parsed["mean_us"] - embedded["mean_us"],
        "overhead_ratio_mean": ratio(parsed),
        "prepared_overhead_ratio_mean": ratio(prepared),
        "pipelined_overhead_ratio_mean": ratio(pipelined),
        "prepared_vs_parsed_speedup": parsed["mean_us"] / prepared["mean_us"],
        "pipelined_vs_serial_speedup": parsed["mean_us"] / pipelined["mean_us"],
    }


def bench_scaling() -> list[dict]:
    db = Database()
    _seed_kv(db)
    srv = BullfrogServer(
        db, ServerConfig(port=0, max_connections=max(SCALING_CLIENTS) + 8)
    ).start()
    points = []
    try:
        for workers in SCALING_CLIENTS:
            done = [0] * workers
            stop = threading.Event()

            def worker(index: int) -> None:
                with connect(
                    "127.0.0.1", srv.port, auto_prepare=8
                ) as conn:
                    i = index
                    while not stop.is_set():
                        conn.execute(
                            "SELECT v FROM kv WHERE id = ?", ((i * 31) % ROWS,)
                        )
                        done[index] += 1
                        i += 1

            threads = [
                threading.Thread(target=worker, args=(w,), daemon=True)
                for w in range(workers)
            ]
            began = time.perf_counter()
            for t in threads:
                t.start()
            time.sleep(SCALING_SECONDS)
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
            elapsed = time.perf_counter() - began
            points.append(
                {
                    "clients": workers,
                    "total_ops": sum(done),
                    "ops_per_sec": sum(done) / elapsed,
                }
            )
    finally:
        srv.shutdown(drain_timeout=1.0)
    return points


def bench_idle_connections() -> dict:
    """Hold ``IDLE_CONNECTIONS`` parked clients on one event loop and
    measure probe latency while they sit there."""
    db = Database()
    _seed_kv(db)
    srv = BullfrogServer(
        db,
        ServerConfig(port=0, max_connections=IDLE_CONNECTIONS + 8),
    ).start()
    conns = []
    try:
        for _ in range(IDLE_CONNECTIONS):
            conns.append(connect("127.0.0.1", srv.port))
        server_threads = [
            t for t in threading.enumerate()
            if t.name.startswith("bullfrogd-")
        ]
        probe = connect("127.0.0.1", srv.port)
        pings = []
        for _ in range(200):
            began = time.perf_counter()
            probe.ping()
            pings.append(time.perf_counter() - began)
        probe.close()
        return {
            "connections": len(conns),
            "held": srv.active_connections() >= IDLE_CONNECTIONS,
            "io_threads": srv.io_thread_count(),
            "server_threads": len(server_threads),
            "probe_ping": _latency_stats(pings),
        }
    finally:
        for c in conns:
            c.close()
        srv.shutdown(drain_timeout=2.0)


def _tpcc_migration_run(make_client, controller, scenario) -> dict:
    driver = WorkloadDriver(
        make_client,
        DriverConfig(duration=TPCC_SECONDS, rate=None, workers=TPCC_CLIENTS),
    )

    def on_start(drv: WorkloadDriver) -> None:
        def flip() -> None:
            time.sleep(1.0)
            drv.mark("migration start")
            controller.submit(
                "split", scenario["ddl"],
                strategy=Strategy.LAZY,
                background=BackgroundConfig(
                    delay=0.5, chunk=64, interval=0.002
                ),
                big_flip=scenario["big_flip"],
            )
        threading.Thread(target=flip, daemon=True).start()

    result = driver.run(on_start=on_start)
    handle = controller.active
    deadline = time.monotonic() + 30.0
    while not handle.is_complete and time.monotonic() < deadline:
        time.sleep(0.05)
    report = InvariantChecker(controller.engine).check(
        expect_complete=True, structural_only=True
    )
    return {
        "clients": TPCC_CLIENTS,
        "duration": result.duration,
        "completed": result.completed,
        "failed": result.failed,
        "tps": result.overall_tps,
        "errors": result.errors,
        "connection_errors": result.connection_errors,
        "reconnects": result.reconnects,
        "migration_complete": handle.is_complete,
        "invariant_violations": [str(v) for v in report.violations],
    }


def _loaded_db() -> Database:
    db = Database(obs=Observability())
    session = db.connect()
    create_schema(session)
    load_tpcc(db, TINY_SCALE)
    return db


class _EmbeddedTpccTerminal:
    """In-process twin of NetworkTpccClient: same front-end restart,
    no socket — the embedded reference for wire overhead."""

    def __init__(self, db: Database, index: int, new_variant) -> None:
        self.new_variant = new_variant
        self.client = TpccClient(
            db, TINY_SCALE, SchemaVariant.BASE, seed=1000 + index
        )

    def run_random(self) -> tuple[str, bool]:
        name = self.client.pick_transaction()
        try:
            return name, self.client.run(name)
        except SchemaVersionError:
            self.client.session.reset()
            if self.new_variant is not None:
                self.client.variant = self.new_variant
            return name, self.client.run(name)

    @property
    def aborts(self) -> int:
        return self.client.aborts

    def close(self) -> None:
        self.client.session.close()


def bench_tpcc_through_migration() -> dict:
    """Networked TPC-C (prepared statements) and its embedded twin,
    both through the live split migration; the tps ratio is the wire
    overhead at ``TPCC_CLIENTS`` terminals."""
    scenario = SCENARIOS["split"]

    # Embedded reference first (its own db + migration).
    db = _loaded_db()
    controller = MigrationController(db)
    embedded = _tpcc_migration_run(
        lambda index: _EmbeddedTpccTerminal(db, index, scenario["variant"]),
        controller, scenario,
    )

    # Networked run, identical workload over sockets.
    db = _loaded_db()
    srv = BullfrogServer(
        db, ServerConfig(port=0, max_connections=TPCC_CLIENTS + 16)
    ).start()
    controller = MigrationController(db)
    try:
        networked = _tpcc_migration_run(
            lambda index: NetworkTpccClient(
                "127.0.0.1", srv.port, TINY_SCALE,
                variant=SchemaVariant.BASE,
                new_variant=scenario["variant"],
                seed=1000 + index,
            ),
            controller, scenario,
        )
    finally:
        srv.shutdown(drain_timeout=2.0)

    networked["embedded_reference_tps"] = embedded["tps"]
    networked["wire_overhead_ratio"] = (
        embedded["tps"] / networked["tps"] if networked["tps"] else None
    )
    return networked


def run_all(out_path: str = "results/net_bench.json") -> dict:
    results = {
        "smoke": SMOKE,
        "pr5_baseline": PR5_BASELINE,
        "single_client": bench_single_client(),
        "scaling": bench_scaling(),
        "idle_connections": bench_idle_connections(),
        "tpcc_migration": bench_tpcc_through_migration(),
    }
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)
    single = results["single_client"]
    print(
        f"\nsingle client: embedded {single['embedded']['mean_us']:.0f}us "
        f"→ parsed {single['networked']['mean_us']:.0f}us "
        f"({single['overhead_ratio_mean']:.2f}x) "
        f"→ prepared {single['prepared']['mean_us']:.0f}us "
        f"({single['prepared_overhead_ratio_mean']:.2f}x) "
        f"→ pipelined {single['pipelined']['mean_us']:.0f}us "
        f"({single['pipelined_overhead_ratio_mean']:.2f}x)"
    )
    for point in results["scaling"]:
        print(
            f"scaling: {point['clients']:>2} clients "
            f"{point['ops_per_sec']:>8.0f} ops/s"
        )
    idle = results["idle_connections"]
    print(
        f"idle: {idle['connections']} parked connections on "
        f"{idle['io_threads']} I/O thread "
        f"({idle['server_threads']} server threads total), "
        f"probe ping p50 {idle['probe_ping']['p50_us']:.0f}us"
    )
    tpcc = results["tpcc_migration"]
    print(
        f"tpcc through migration ({tpcc['clients']} clients): "
        f"{tpcc['tps']:.1f} tps networked vs "
        f"{tpcc['embedded_reference_tps']:.1f} tps embedded "
        f"(wire overhead {tpcc['wire_overhead_ratio']:.2f}x), "
        f"{tpcc['connection_errors']} connection errors, "
        f"migration_complete={tpcc['migration_complete']}"
    )
    print(f"wrote {out_path}")
    return results


# ----------------------------------------------------------------------
# pytest entry point (the CI network job)
# ----------------------------------------------------------------------


def test_net_overhead_bench():
    results = run_all()
    single = results["single_client"]
    # The networked path must work and its cost must be bounded: the
    # wire adds codec + 2 loopback hops, but never orders of magnitude
    # (that would mean a stall — e.g. Nagle/delayed-ACK interaction).
    assert single["overhead_ratio_mean"] < 50.0
    # Pipelining amortizes the round trip and must strictly beat
    # serial execution.  Prepared execution skips the tokenizer and
    # parser, but the engine also caches parse results, so on loopback
    # the win is a few percent — assert it never *costs* more than
    # noise rather than demanding a strict win on every run.
    assert single["pipelined"]["mean_us"] < single["networked"]["mean_us"]
    assert (
        single["prepared"]["mean_us"]
        < single["networked"]["mean_us"] * 1.25
    )
    assert all(p["total_ops"] > 0 for p in results["scaling"])
    idle = results["idle_connections"]
    assert idle["held"] and idle["io_threads"] == 1
    tpcc = results["tpcc_migration"]
    assert tpcc["completed"] > 0
    assert tpcc["migration_complete"] is True
    assert tpcc["invariant_violations"] == []
    assert "SchemaVersionError" not in tpcc["errors"]


if __name__ == "__main__":
    run_all()
