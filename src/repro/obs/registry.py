"""Process-wide metric registry: counters, gauges, histograms.

The registry is the single source of truth for every numeric the system
exposes — the engine's :class:`~repro.core.stats.MigrationStats` is a
*view* over registry counters, the bench recorders feed the same
histograms, and the export surfaces (Prometheus text, JSON snapshot,
the shell's ``\\metrics``) all render from here.

Design points:

* **Lock-free writes, locked reads.**  There is no latch on the write
  path at all: unit increments take ``Counter.inc1`` (a pre-bound
  allocation-free ``deque.append`` of the interned ``1``), while
  ``Counter.inc(amount)`` and ``Histogram.observe`` append to the same
  per-cell ``deque`` — a single C call the GIL makes atomic, so
  concurrent updates are never lost — and the queued amounts are
  folded into the cell's totals under its lock on reads (exports,
  snapshots) or after a bounded number of appends.  The
  registry-level latch is taken only when a new metric family or a new
  label child is created — a once-per-name event, not a per-increment
  one.
* **``labels(**kv)`` child API.**  A family registered with
  ``labelnames`` hands out per-label-value children; a family without
  labels *is* its own single cell, so ``registry.counter("x").inc()``
  works directly (the prometheus-client idiom).
* **Near-zero cost when unregistered.**  :meth:`MetricRegistry.get`
  returns the shared :data:`NULL_METRIC` for unknown names, whose
  ``inc``/``set``/``observe`` are no-ops — callers can hold a metric
  handle unconditionally and pay one method call when observability is
  off.  Hot paths that want literally zero cost guard with
  ``obs is not None`` instead (the fault-seam pattern).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from functools import partial
from typing import Any, Iterable, Sequence

DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class NullMetric:
    """No-op stand-in for an unregistered metric (and for disabled
    observability).  Accepts the whole cell API and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def inc1(self) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **kv: Any) -> "NullMetric":
        return self

    @property
    def value(self) -> float:
        return 0


NULL_METRIC = NullMetric()


class Counter:
    """Monotonically increasing cell.

    ``inc`` is lock-free but exact.  Unit increments — the hot case on
    the no-op migration loop, where a statement bumps a handful of
    counters by one — take :attr:`inc1`, a pre-bound
    ``partial(deque.append, 1)``: one atomic C call that allocates
    *nothing* (``1`` is an interned small int; an
    ``itertools.count().__next__`` here would heap-allocate a fresh
    PyLong per call, and three of those per statement measurably churn
    the allocator under the hot loop).  Arbitrary amounts append to
    the same deque and are folded into ``_base`` under the cell lock
    on reads (exports, snapshots) or after ``_COMPACT`` appends to
    bound memory; :meth:`maybe_compact` lets hot callers bound the
    inc1 queue on their own sampled cadence.  On slow hosts a lock
    round-trip costs ~5x the append, and reads are rare next to
    writes."""

    __slots__ = ("_base", "_events", "inc1", "_lock")
    kind = "counter"
    _COMPACT = 4096

    def __init__(self) -> None:
        self._base = 0
        self._events: deque = deque()
        # Hot-path unit increment: bind once, call with no glue.
        self.inc1 = partial(self._events.append, 1)
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount == 1:
            self._events.append(1)
        else:
            if amount < 0:
                raise ValueError("counters cannot decrease")
            self._events.append(amount)
        if len(self._events) > self._COMPACT:
            self._compact()

    def maybe_compact(self) -> None:
        """Fold the queued increments if the queue has grown past the
        compaction bound.  ``inc1`` itself never checks (that is the
        point); writers with a natural sampled cadence call this on
        their slow path so a scrape-less process stays bounded."""
        if len(self._events) > self._COMPACT:
            self._compact()

    def _compact(self) -> float:
        with self._lock:
            base = self._base
            events = self._events
            try:
                while True:
                    base += events.popleft()
            except IndexError:
                pass
            self._base = base
            return base

    @property
    def value(self) -> float:
        return self._compact()


class Gauge:
    """Settable cell; ``None`` until first set (rendered only once set)."""

    __slots__ = ("_value", "_lock")
    kind = "gauge"

    def __init__(self) -> None:
        self._value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float | None) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value = (self._value or 0) + amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float | None:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram cell (cumulative bucket counts + sum).

    Same write path as :class:`Counter`: ``observe`` is one atomic
    ``deque.append``; bucketing (a ``bisect`` per sample) is deferred
    to the locked drain that runs on reads or after ``_COMPACT``
    appends, keeping the per-sample hot cost off the measured path."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_events", "_lock")
    kind = "histogram"
    _COMPACT = 4096

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError("histograms need at least one bucket bound")
        self.buckets = ordered
        self._counts = [0] * (len(ordered) + 1)  # +1 = the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._events: deque = deque()
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        events = self._events
        events.append(value)
        if len(events) > self._COMPACT:
            self._drain()

    def _drain_locked(self) -> None:
        counts = self._counts
        buckets = self.buckets
        events = self._events
        total = 0.0
        drained = 0
        try:
            while True:
                value = events.popleft()
                # bisect_left: first bound >= value, i.e. the
                # `value <= bound` bucket; falls off the end into +Inf.
                counts[bisect_left(buckets, value)] += 1
                total += value
                drained += 1
        except IndexError:
            pass
        self._sum += total
        self._count += drained

    def _drain(self) -> None:
        with self._lock:
            self._drain_locked()

    def state(self) -> tuple[tuple[int, ...], int, float]:
        """Raw ``(per_bucket_counts, count, sum)`` read atomically —
        the final slot is the +Inf bucket.  The history sampler scrapes
        this shape: per-bucket (non-cumulative) counts merge across
        label children and difference across samples without the string
        keys :meth:`snapshot` builds for export."""
        with self._lock:
            self._drain_locked()
            return tuple(self._counts), self._count, self._sum

    def snapshot(self) -> dict[str, Any]:
        """Cumulative ``{le: count}`` mapping plus sum/count, read
        atomically."""
        with self._lock:
            self._drain_locked()
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        cumulative: dict[str, float] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"buckets": cumulative, "sum": total_sum, "count": total}

    @property
    def count(self) -> int:
        with self._lock:
            self._drain_locked()
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            self._drain_locked()
            return self._sum


_CELL_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
}


class MetricFamily:
    """One registered name.  With ``labelnames`` it is a parent handing
    out children via :meth:`labels`; without, it delegates the cell API
    to a single default child so it can be used directly."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        _validate_name(name)
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple, Any] = {}
        self._latch = threading.Lock()  # creation only, never on inc/observe
        self._default = None if self.labelnames else self._make_cell()

    def _make_cell(self):
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS)
        return _CELL_FACTORIES[self.kind]()

    # -- child API -----------------------------------------------------
    def labels(self, **kv: Any):
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} was registered without labels")
        try:
            key = tuple(str(kv[name]) for name in self.labelnames)
        except KeyError as exc:
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}"
            ) from exc
        # Latch-free fast path: dict reads are safe against concurrent
        # inserts under the GIL, and children are never removed.
        child = self._children.get(key)
        if child is not None:
            return child
        with self._latch:
            child = self._children.get(key)
            if child is None:
                child = self._make_cell()
                self._children[key] = child
            return child

    # -- unlabeled delegation ------------------------------------------
    def cell(self):
        """The single default cell (unlabeled families only).  Hot
        paths bind this once and call ``inc``/``observe`` on the cell
        directly, skipping the per-call family delegation."""
        return self._cell()

    def _cell(self):
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                f"use .labels(...)"
            )
        return self._default

    def inc(self, amount: float = 1) -> None:
        self._cell().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._cell().dec(amount)

    def set(self, value: float | None) -> None:
        self._cell().set(value)

    def observe(self, value: float) -> None:
        self._cell().observe(value)

    @property
    def value(self):
        return self._cell().value

    @property
    def count(self):
        return self._cell().count

    @property
    def sum(self):
        return self._cell().sum

    # -- collection ----------------------------------------------------
    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """``[(labels_dict, cell), ...]`` — a point-in-time child list."""
        if self._default is not None:
            return [({}, self._default)]
        with self._latch:
            children = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), cell) for key, cell in children
        ]


class MetricRegistry:
    """Named metric families.  Registration is idempotent: asking for an
    existing name with the same kind returns the existing family, so
    independent components can share series without coordination."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._latch = threading.Lock()

    # -- registration --------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is None:
            with self._latch:
                existing = self._families.get(name)
                if existing is None:
                    existing = MetricFamily(name, kind, help, labelnames, buckets)
                    self._families[name] = existing
                    return existing
        if existing.kind != kind or existing.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind} "
                f"with labels {existing.labelnames}"
            )
        return existing

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labelnames, buckets)

    # -- lookup --------------------------------------------------------
    def get(self, name: str):
        """The family, or :data:`NULL_METRIC` when unregistered — callers
        can hold and poke the result unconditionally."""
        return self._families.get(name, NULL_METRIC)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def families(self) -> list[MetricFamily]:
        with self._latch:
            return list(self._families.values())

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of every family: the shape embedded in bench
        artifacts and served by the ``/metrics.json`` endpoint."""
        out: dict[str, Any] = {}
        for family in self.families():
            samples = []
            for labels, cell in family.samples():
                if family.kind == "histogram":
                    samples.append({"labels": labels, **cell.snapshot()})
                else:
                    value = cell.value
                    if value is None:
                        continue
                    samples.append({"labels": labels, "value": value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "NullMetric",
    "NULL_METRIC",
    "DEFAULT_LATENCY_BUCKETS",
]
