"""Compare the three migration strategies on the same workload.

Runs the table-split scenario under eager, multi-step, and BullFrog
(lazy) strategies at a sub-saturation request rate, then prints the
throughput timeline and latency summary for each — a miniature of the
paper's figure 3/4.

Run:  python examples/strategy_comparison.py
"""

from repro.bench import ExperimentConfig, run_migration_experiment
from repro.bench.report import render_timeseries, summary_rows
from repro.core import Strategy
from repro.tpcc import ScaleConfig


def main() -> None:
    scale = ScaleConfig(
        warehouses=1,
        districts_per_warehouse=4,
        customers_per_district=200,
        items=300,
        initial_orders_per_district=150,
    )
    lines = {}
    events = {}
    latencies = {}
    for strategy in (Strategy.EAGER, Strategy.MULTISTEP, Strategy.LAZY):
        print(f"running {strategy.value} ...")
        config = ExperimentConfig(
            scenario="split",
            scale=scale,
            strategy=strategy,
            duration=10.0,
            migrate_at=2.5,
            workers=3,
            background_delay=1.5,
            rate_fraction=0.55,
        )
        result = run_migration_experiment(config)
        name = strategy.value
        lines[name] = result.throughput
        latencies[name] = result.latencies("new_order")
        marks = [(result.migration_started_at, "migration start")]
        if result.migration_completed_at is not None:
            marks.append((result.migration_completed_at, "migration end"))
        events[name] = [(t, lbl) for t, lbl in marks if t is not None]
        print(
            f"  max={result.max_tps:.0f} tps, rate={result.rate:.0f} tps, "
            f"completed={result.driver.completed}, "
            f"migration window="
            f"{result.migration_started_at and round(result.migration_started_at, 1)}"
            f"..{result.migration_completed_at and round(result.migration_completed_at, 1)}s"
        )

    print()
    print(render_timeseries(lines, events, title="Throughput during table-split migration"))
    print()
    print("NewOrder latency from migration start (milliseconds):")
    for row in summary_rows(latencies):
        print(
            f"  {row['system']:<10} p50={row['p50_ms']:8.1f}  "
            f"p99={row['p99_ms']:8.1f}  max={row['max_ms']:8.1f}  "
            f"(n={row['count']})"
        )


if __name__ == "__main__":
    main()
