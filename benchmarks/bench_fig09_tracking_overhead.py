"""Figure 9: data-structure maintenance cost (bitmap vs no tracking)."""

from repro.bench.experiments import fig9_tracking_overhead


def test_fig9_tracking_overhead(benchmark, profile, record_figure):
    result = benchmark.pedantic(
        fig9_tracking_overhead,
        kwargs={"profile": profile},
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert set(result.lines) == {"bullfrog-bitmap", "bullfrog-nobitmap"}
