"""Observe a live TPC-C lazy migration end to end — then trace one
client request across the wire into the engine — then watch the health
rules catch a deadlock storm and black-box it.

Act 1 runs the paper's SPLIT scenario under a TPC-C workload with the
observability layer attached (metrics + tracing).  Act 2 starts a real
``bullfrogd`` on a loopback port and sends traced requests through the
client library: the trace context crosses the socket in the frame
trailer, so the server-loop spans (``net.queue`` → ``server.execute``
→ ``stmt.*`` → ``net.flush``) land in the same trace as the client's
root span.  Act 3 attaches the monitoring stack (history sampler +
health rules + flight recorder), manufactures a deadlock storm, and
shows the ``deadlock_rate`` rule transition to critical — which makes
the flight recorder write one incident bundle under
``results/incidents/`` with stacks, trace tail, slow queries, metric
history, lock tables, and migration progress.  Artifacts:

* ``results/obs_metrics.prom`` — Prometheus text snapshot: migration
  counters (granules, tuples, skip-waits, aborts), transaction and WAL
  counters, and the sampled per-statement latency histograms;
* ``results/obs_trace.json`` — one merged Chrome ``trace_event``
  document.  Load it in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``: the ``tpcc-experiment`` process row shows
  ``stmt.*`` / ``migrate.wip`` / ``background.pass`` spans, and the
  ``client`` + ``bullfrogd`` rows show one networked request's spans
  linked by a shared ``trace`` id in their args;
* ``results/incidents/<ts>-<seq>-health-deadlock_rate/`` — the act-3
  incident bundle (``manifest.json`` lists its sections).

The tour also prints the SQL-facing surfaces added with distributed
tracing: ``bullfrog_stat_wait_events`` (where statement time went, by
class) and ``bullfrog_stat_slow_queries`` (the slow-query ring with
trace ids).

Run with::

    PYTHONPATH=src python examples/observability_tour.py
"""

import json
import os
import threading
import time

from repro import Database
from repro.bench import ExperimentConfig, run_migration_experiment
from repro.errors import DeadlockAvoided
from repro.net import BullfrogServer, ServerConfig, connect
from repro.obs import (
    Observability,
    TraceLog,
    default_rules,
    merge_chrome,
    render_prometheus,
)
from repro.shell import render_top

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")


def run_experiment():
    """Act 1: the SPLIT migration under TPC-C, fully instrumented."""
    config = ExperimentConfig(
        scenario="split",
        duration=8.0,
        migrate_at=2.0,
        background_delay=0.2,
        workers=4,
        observability=True,
    )
    result = run_migration_experiment(config)
    obs = result.obs
    assert obs is not None

    stats = result.migration_stats
    registry = obs.registry
    print(
        f"migration: {stats.get('granules_migrated', 0)} granules / "
        f"{stats.get('tuples_migrated', 0)} tuples "
        f"(skip-waits="
        f"{registry.get('bullfrog_migration_skip_waits_total').value:.0f}, "
        f"aborts="
        f"{registry.get('bullfrog_migration_txn_aborts_total').value:.0f})"
    )
    return obs


def run_traced_request():
    """Act 2: a traced client request through a live bullfrogd.

    ``slow_query_threshold=0.0`` forces every statement into the
    slow-query ring (a real deployment would use e.g. ``0.05``); it
    also forces full tracing, though the wire trailer alone already
    does that for propagated requests.
    """
    db = Database(obs=Observability(slow_query_threshold=0.0))
    server = BullfrogServer(db, ServerConfig(port=0)).start()
    client_log = TraceLog()
    try:
        with connect("127.0.0.1", server.port, trace=True,
                     trace_log=client_log) as conn:
            conn.execute(
                "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)"
            )
            conn.begin()
            for i in range(8):
                conn.execute(
                    "INSERT INTO accounts VALUES (?, ?)", (i, i * 100)
                )
            conn.commit()
            ctx = conn.last_trace  # the COMMIT: its tree has wal.append
            with conn.pipeline() as pipe:
                for i in range(8):
                    pipe.execute(
                        "SELECT balance FROM accounts WHERE id = ?", (i,)
                    )

        session = db.connect()
        print("\nbullfrog_stat_wait_events:")
        for row in session.execute(
            "SELECT * FROM bullfrog_stat_wait_events"
        ).dicts():
            print(
                f"  {row['wait_class']:>9}: {row['count']:>3} events, "
                f"{row['total_seconds'] * 1000.0:8.3f} ms"
            )
        slow = session.execute(
            "SELECT stmt, duration_ms, cpu_ms, trace_id"
            " FROM bullfrog_stat_slow_queries"
        ).dicts()
        print(f"\nbullfrog_stat_slow_queries: {len(slow)} records")
        for row in slow[-3:]:
            print(
                f"  {row['stmt']:>7} {row['duration_ms']:7.3f} ms "
                f"(cpu {row['cpu_ms']:.3f} ms) trace={row['trace_id']}"
            )

        linked = db.obs.trace.events_for_trace(ctx.trace_id)
        print(
            f"\nCOMMIT request trace={ctx.trace_id}: "
            f"{[e.name for e in client_log.events_for_trace(ctx.trace_id)]} "
            f"on the client, {[e.name for e in linked]} on the server"
        )
        return client_log, db.obs.trace
    finally:
        server.shutdown(drain_timeout=2.0)


def run_incident() -> None:
    """Act 3: a deadlock storm trips a health rule; the flight recorder
    black-boxes the moment.

    The ``deadlock_rate`` bound is tightened to 0.5/s so a handful of
    manufactured deadlocks breaches it deterministically; production
    defaults are an order of magnitude looser.
    """
    obs = Observability()
    db = Database(obs=obs)
    history, health, flight = obs.attach_monitoring(
        db,
        interval=0.05,
        rules=default_rules(deadlocks_per_sec=0.5, window=2.0),
        incident_dir=os.path.join(RESULTS, "incidents"),
        start=False,  # sampled by hand so the breach timing is exact
    )

    setup = db.connect()
    setup.execute("CREATE TABLE t1 (id INT PRIMARY KEY)")
    setup.execute("CREATE TABLE t2 (id INT PRIMARY KEY)")
    setup.execute("INSERT INTO t1 VALUES (1)")
    setup.execute("INSERT INTO t2 VALUES (1)")
    history.sample_now()  # baseline: everything ok

    deadlocks = 0
    for _ in range(3):  # the storm: cross-updates that must cycle
        s1, s2 = db.connect(), db.connect()
        s1.begin()
        s2.begin()
        s1.execute("UPDATE t1 SET id = 1 WHERE id = 1")
        s2.execute("UPDATE t2 SET id = 1 WHERE id = 1")
        failed = []

        def cross(session=s2):
            try:
                session.execute("UPDATE t1 SET id = 1 WHERE id = 1")
            except DeadlockAvoided:
                failed.append("s2")

        thread = threading.Thread(target=cross)
        thread.start()
        time.sleep(0.05)
        try:
            s1.execute("UPDATE t2 SET id = 1 WHERE id = 1")
        except DeadlockAvoided:
            failed.append("s1")
        thread.join(timeout=10.0)
        deadlocks += len(failed)
        for session in (s1, s2):
            if session.in_transaction:
                session.rollback()

    time.sleep(0.05)
    history.sample_now()  # the scrape that sees the storm -> breach -> dump
    print(f"\ndeadlock storm: {deadlocks} victims")
    summary = history.summary()
    summary["health"] = health.report(max_age=1.0)
    print(render_top(summary))
    bundles = flight.incidents()
    assert bundles, "the breach must have produced an incident bundle"
    bundle = bundles[-1]
    manifest = json.load(open(os.path.join(bundle, "manifest.json")))
    print(f"incident bundle ({manifest['reason']}): {bundle}")
    for name in sorted(manifest["files"]):
        size = os.path.getsize(os.path.join(bundle, name))
        print(f"  {name:<18} {size:>7} bytes")
    obs.close()


def main() -> None:
    experiment_obs = run_experiment()
    client_log, server_log = run_traced_request()
    run_incident()

    prom_path = os.path.join(RESULTS, "obs_metrics.prom")
    with open(prom_path, "w") as fh:
        fh.write(render_prometheus(experiment_obs.registry))

    merged = merge_chrome(
        [
            experiment_obs.trace.to_chrome(),
            client_log.to_chrome(),
            server_log.to_chrome(),
        ],
        ["tpcc-experiment", "client", "bullfrogd"],
    )
    trace_path = os.path.join(RESULTS, "obs_trace.json")
    with open(trace_path, "w") as fh:
        json.dump(merged, fh)

    events = merged["traceEvents"]
    fg = [e for e in events if e.get("name") == "migrate.wip"]
    bg = [
        e for e in events
        if e.get("name") == "background.pass" and e["ph"] == "X"
    ]
    net = [
        e for e in events
        if e.get("name") in ("net.queue", "server.execute", "net.flush")
    ]
    print(
        f"\ntrace: {len(events)} events, {len(fg)} migrate.wip spans, "
        f"{len(bg)} background.pass spans, {len(net)} server-loop spans"
    )
    print(f"wrote {prom_path}")
    print(f"wrote {trace_path}")


if __name__ == "__main__":
    main()
