"""Tests for expression compilation/evaluation (repro.exec.expressions)."""

import datetime
from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError, TypeError_, UnknownObjectError
from repro.exec.expressions import (
    RowLayout,
    compare_values,
    compile_expr,
    evaluate_constant,
    like_match,
    predicate_satisfied,
    sql_and,
    sql_not,
    sql_or,
)
from repro.sql import parse_expression


def evaluate(sql: str, row=(), layout=None, params=()):
    layout = layout or RowLayout()
    return compile_expr(parse_expression(sql), layout)(row, params)


def table_layout(**columns):
    layout = RowLayout()
    for name in columns:
        layout.add("t", name)
    return layout, tuple(columns.values())


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("10 - 4") == 6
        assert evaluate("2 * 2.5") == Decimal("5.0")

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate("7 / 2") == 3
        assert evaluate("-7 / 2") == -3

    def test_float_division(self):
        assert evaluate("7.0 / 2") == Decimal("3.5")

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate("1 / 0")

    def test_modulo(self):
        assert evaluate("7 % 3") == 1

    def test_null_propagates(self):
        assert evaluate("1 + NULL") is None
        assert evaluate("NULL * 3") is None

    def test_decimal_float_mix(self):
        assert evaluate("1.5 + 1") == Decimal("2.5")

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError_):
            evaluate("'a' + 1")

    def test_unary_minus(self):
        assert evaluate("-(3 + 4)") == -7
        assert evaluate("- NULL") is None


class TestComparisons:
    def test_numbers(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <= 2") is True
        assert evaluate("3 > 4") is False
        assert evaluate("1 = 1") is True
        assert evaluate("1 <> 1") is False

    def test_cross_numeric_types(self):
        assert evaluate("1 = 1.0") is True
        assert evaluate("2.5 > 2") is True

    def test_strings(self):
        assert evaluate("'abc' < 'abd'") is True

    def test_char_padding_ignored(self):
        assert compare_values("AB  ", "AB") == 0

    def test_null_comparison_yields_null(self):
        assert evaluate("NULL = 1") is None
        assert evaluate("1 < NULL") is None

    def test_incomparable_types(self):
        with pytest.raises(TypeError_):
            compare_values(1, "a")

    def test_date_vs_datetime(self):
        assert (
            compare_values(
                datetime.date(2021, 6, 20),
                datetime.datetime(2021, 6, 20, 0, 0),
            )
            == 0
        )


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False
        assert sql_and(True, None) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True
        assert sql_or(False, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(None) is None

    def test_predicate_satisfied(self):
        assert predicate_satisfied(True)
        assert not predicate_satisfied(False)
        assert not predicate_satisfied(None)

    def test_integration(self):
        assert evaluate("NULL AND FALSE") is False
        assert evaluate("NULL OR TRUE") is True
        assert evaluate("NOT NULL") is None


class TestBetweenInLike:
    def test_between(self):
        assert evaluate("5 BETWEEN 1 AND 10") is True
        assert evaluate("0 BETWEEN 1 AND 10") is False
        assert evaluate("5 NOT BETWEEN 1 AND 10") is False

    def test_between_null(self):
        assert evaluate("NULL BETWEEN 1 AND 2") is None

    def test_in(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("9 IN (1, 2, 3)") is False
        assert evaluate("9 NOT IN (1, 2)") is True

    def test_in_with_null_semantics(self):
        assert evaluate("1 IN (1, NULL)") is True
        assert evaluate("9 IN (1, NULL)") is None  # unknown, not false
        assert evaluate("NULL IN (1, 2)") is None

    def test_like(self):
        assert evaluate("'hello' LIKE 'h%'") is True
        assert evaluate("'hello' LIKE '_ello'") is True
        assert evaluate("'hello' LIKE 'H%'") is False
        assert evaluate("'hello' NOT LIKE 'x%'") is True

    def test_like_special_chars_escaped(self):
        assert like_match("a.b", "a.b") is True
        assert like_match("axb", "a.b") is False  # '.' is literal

    def test_like_null(self):
        assert like_match(None, "a%") is None


class TestCaseCastExtract:
    def test_searched_case(self):
        assert evaluate("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' END") == "b"

    def test_simple_case(self):
        assert evaluate("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "two"

    def test_case_default(self):
        assert evaluate("CASE WHEN FALSE THEN 1 ELSE 99 END") == 99

    def test_case_no_match_no_default(self):
        assert evaluate("CASE WHEN FALSE THEN 1 END") is None

    def test_cast(self):
        assert evaluate("CAST('42' AS INT)") == 42
        assert evaluate("CAST(1 AS BOOL)") is True

    def test_extract_fields(self):
        layout, row = table_layout(d=datetime.datetime(2021, 6, 20, 14, 30, 45))
        assert evaluate("EXTRACT(YEAR FROM t.d)", row, layout) == 2021
        assert evaluate("EXTRACT(MONTH FROM t.d)", row, layout) == 6
        assert evaluate("EXTRACT(DAY FROM t.d)", row, layout) == 20
        assert evaluate("EXTRACT(HOUR FROM t.d)", row, layout) == 14
        assert evaluate("EXTRACT(MINUTE FROM t.d)", row, layout) == 30

    def test_extract_null(self):
        layout, row = table_layout(d=None)
        assert evaluate("EXTRACT(DAY FROM t.d)", row, layout) is None

    def test_extract_requires_temporal(self):
        layout, row = table_layout(d=5)
        with pytest.raises(TypeError_):
            evaluate("EXTRACT(DAY FROM t.d)", row, layout)


class TestScalarFunctions:
    def test_strings(self):
        assert evaluate("LOWER('ABC')") == "abc"
        assert evaluate("UPPER('abc')") == "ABC"
        assert evaluate("LENGTH('hello')") == 5
        assert evaluate("SUBSTR('hello', 2, 3)") == "ell"
        assert evaluate("TRIM('  x  ')") == "x"

    def test_concat_operator(self):
        assert evaluate("'a' || 'b'") == "ab"
        assert evaluate("'n=' || 5") == "n=5"
        assert evaluate("'a' || NULL") is None

    def test_abs_round(self):
        assert evaluate("ABS(-4)") == 4
        assert evaluate("ROUND(2.5)") == 2  # banker's rounding (Python)

    def test_coalesce(self):
        assert evaluate("COALESCE(NULL, NULL, 3)") == 3
        assert evaluate("COALESCE(NULL, NULL)") is None

    def test_nullif(self):
        assert evaluate("NULLIF(1, 1)") is None
        assert evaluate("NULLIF(1, 2)") == 1

    def test_null_passthrough(self):
        assert evaluate("LOWER(NULL)") is None

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            evaluate("FROBNICATE(1)")


class TestColumnResolution:
    def test_qualified_and_bare(self):
        layout, row = table_layout(a=1, b=2)
        assert evaluate("t.a + b", row, layout) == 3

    def test_unknown_column(self):
        layout, row = table_layout(a=1)
        with pytest.raises(UnknownObjectError):
            evaluate("nope", row, layout)

    def test_ambiguous_bare_name(self):
        layout = RowLayout()
        layout.add("x", "id")
        layout.add("y", "id")
        with pytest.raises(ExecutionError):
            compile_expr(parse_expression("id"), layout)

    def test_ambiguous_resolvable_when_qualified(self):
        layout = RowLayout()
        layout.add("x", "id")
        layout.add("y", "id")
        fn = compile_expr(parse_expression("y.id"), layout)
        assert fn((10, 20), ()) == 20

    def test_layout_extend(self):
        a = RowLayout.for_table("a", ["x"])
        b = RowLayout.for_table("b", ["y"])
        merged = a.extend(b)
        fn = compile_expr(parse_expression("a.x + b.y"), merged)
        assert fn((1, 2), ()) == 3


class TestParams:
    def test_param_binding(self):
        assert evaluate("? + ?", params=[1, 2]) == 3

    def test_missing_param(self):
        with pytest.raises(ExecutionError):
            evaluate("?", params=[])


class TestEvaluateConstant:
    def test_constant(self):
        assert evaluate_constant(parse_expression("6 * 7")) == 42

    def test_column_reference_fails(self):
        with pytest.raises(UnknownObjectError):
            evaluate_constant(parse_expression("x"))


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------

_numbers = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


@given(_numbers, _numbers)
def test_compare_values_antisymmetric(a, b):
    ab = compare_values(a, b)
    ba = compare_values(b, a)
    assert ab == -ba


@given(_numbers, _numbers, _numbers)
def test_compare_values_transitive(a, b, c):
    values = sorted([a, b, c], key=float)
    assert compare_values(values[0], values[2]) <= 0


@given(st.text(max_size=10), st.text(max_size=10))
def test_string_compare_consistent_with_python(a, b):
    cmp = compare_values(a, b)
    stripped_a, stripped_b = a.rstrip(" "), b.rstrip(" ")
    if stripped_a == stripped_b:
        assert cmp == 0
    elif stripped_a < stripped_b:
        assert cmp == -1
    else:
        assert cmp == 1


@given(st.booleans() | st.none(), st.booleans() | st.none())
def test_de_morgan(a, b):
    assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))


@given(st.text(alphabet="ab%_", max_size=6), st.text(alphabet="ab", max_size=6))
def test_like_prefix_pattern(pattern, text):
    """LIKE with a trailing % matches any extension of a literal prefix."""
    literal_prefix = pattern.split("%")[0].split("_")[0]
    if pattern == literal_prefix + "%":
        assert like_match(text, pattern) == text.startswith(literal_prefix)
