"""Column metadata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..types import SqlType


@dataclass(frozen=True)
class Column:
    """One column of a table schema.

    ``default`` is a pre-evaluated Python value (the engine evaluates
    DEFAULT expressions at DDL time, since the supported subset only
    allows constant defaults).
    """

    name: str
    type: SqlType
    not_null: bool = False
    default: Any = None
    has_default: bool = False

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` into this column's declared type."""
        return self.type.coerce(value)
