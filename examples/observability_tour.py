"""Observe a live TPC-C lazy migration end to end.

Runs the paper's SPLIT scenario under a TPC-C workload with the
observability layer attached (metrics + tracing), then writes the two
artifacts a production operator would look at:

* ``results/obs_metrics.prom`` — Prometheus text snapshot: migration
  counters (granules, tuples, skip-waits, aborts), transaction and WAL
  counters, and the sampled per-statement latency histograms;
* ``results/obs_trace.json`` — Chrome ``trace_event`` JSON.  Load it in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``: client
  threads show ``stmt.*`` and foreground ``migrate.wip`` spans, and the
  background migrator's ``background.pass`` spans overlap them on their
  own track.

Run with::

    PYTHONPATH=src python examples/observability_tour.py
"""

import json
import os

from repro.bench import ExperimentConfig, run_migration_experiment
from repro.obs import render_prometheus

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")


def main() -> None:
    config = ExperimentConfig(
        scenario="split",
        duration=8.0,
        migrate_at=2.0,
        background_delay=1.0,
        workers=4,
        observability=True,
    )
    result = run_migration_experiment(config)
    obs = result.obs
    assert obs is not None

    prom_path = os.path.join(RESULTS, "obs_metrics.prom")
    with open(prom_path, "w") as fh:
        fh.write(render_prometheus(obs.registry))

    trace_path = os.path.join(RESULTS, "obs_trace.json")
    with open(trace_path, "w") as fh:
        fh.write(obs.trace.to_chrome_json())

    stats = result.migration_stats
    registry = obs.registry
    print(
        f"migration: {stats.get('granules_migrated', 0)} granules / "
        f"{stats.get('tuples_migrated', 0)} tuples "
        f"(skip-waits="
        f"{registry.get('bullfrog_migration_skip_waits_total').value:.0f}, "
        f"aborts="
        f"{registry.get('bullfrog_migration_txn_aborts_total').value:.0f})"
    )
    doc = json.loads(open(trace_path).read())
    events = doc["traceEvents"]
    fg = [e for e in events if e.get("name") == "migrate.wip"]
    bg = [e for e in events if e.get("name") == "background.pass" and e["ph"] == "X"]
    print(
        f"trace: {len(events)} events, {len(fg)} migrate.wip spans, "
        f"{len(bg)} background.pass spans"
    )
    print(f"wrote {prom_path}")
    print(f"wrote {trace_path}")


if __name__ == "__main__":
    main()
