"""Migration progress statistics, consumed by the benchmark harness.

Since the observability layer landed, :class:`MigrationStats` is a
*view* over :class:`~repro.obs.registry.MetricRegistry` counters rather
than a parallel counter bag — the engine's Prometheus surface and
``engine.progress()`` read the same cells, so the two can never drift.
A stats object created without a registry makes a private one, so
standalone use (tests, the eager/multi-step baselines) is unchanged.

Registry counters are process-lifetime totals; the view subtracts the
cell values captured at construction, so a second migration sharing a
registry still reports *its own* counts while the exported totals keep
accumulating (the Prometheus convention).

Thread-safety: every mutator and :meth:`snapshot` run under one stats
latch, so a snapshot can never observe a torn ``add(granules, tuples)``
(the cells' own per-metric locks stripe concurrent *export* reads, but
cross-counter consistency comes from this latch).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any

from ..obs.registry import MetricRegistry

# Time constant for the progress-rate EWMA: alpha = 1 - exp(-dt/tau),
# so irregular update intervals are weighted by how much wall time they
# actually cover.  ~2 s means the rate reflects the last few seconds of
# migration throughput — responsive enough for a live `\progress` view,
# smooth enough that per-batch jitter does not whip the ETA around.
_RATE_TAU_SECONDS = 2.0

_COUNTERS: dict[str, tuple[str, str]] = {
    "granules_migrated": (
        "bullfrog_migration_granules_migrated_total",
        "granules (pages / group keys) migrated",
    ),
    "tuples_migrated": (
        "bullfrog_migration_tuples_migrated_total",
        "output tuples produced by migration transactions",
    ),
    "skip_waits": (
        "bullfrog_migration_skip_waits_total",
        "times a worker found a granule in-progress elsewhere",
    ),
    "migration_txn_aborts": (
        "bullfrog_migration_txn_aborts_total",
        "aborted migration transactions",
    ),
    "duplicate_attempts": (
        "bullfrog_migration_duplicate_attempts_total",
        "ON CONFLICT mode: rows skipped as duplicates",
    ),
}


class MigrationStats:
    """Counters for one migration (all strategies share this shape)."""

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self._latch = threading.Lock()
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.background_started_at: float | None = None
        self._cells = {
            key: self.registry.counter(name, help_text)
            for key, (name, help_text) in _COUNTERS.items()
        }
        # View baseline: this migration's counts are deltas over the
        # (possibly shared, process-lifetime) registry cells.
        self._base = {key: cell.value for key, cell in self._cells.items()}
        self._granules_planned = self.registry.gauge(
            "bullfrog_migration_granules_planned",
            "granules known upfront (bitmap units); unset for hashmap units",
        )
        self._running = self.registry.gauge(
            "bullfrog_migration_running",
            "1 while a migration is in progress, 0 once complete",
        )
        # Progress/ETA surface (PR 4): bitmap-derived completion
        # fraction plus EWMA throughput rates and the derived ETA.
        self._progress_gauge = self.registry.gauge(
            "bullfrog_migration_progress_fraction",
            "completion fraction of the running migration (granules "
            "migrated / granules planned); unset for hashmap units",
        )
        self._tuples_rate_gauge = self.registry.gauge(
            "bullfrog_migration_tuples_per_second",
            "EWMA migration throughput in output tuples per second",
        )
        self._eta_gauge = self.registry.gauge(
            "bullfrog_migration_eta_seconds",
            "estimated seconds until the running migration completes "
            "(remaining granules / EWMA granule rate)",
        )
        # EWMA state, guarded by the stats latch like every mutator.
        # Counts accumulate in the pending buckets until enough wall
        # time has passed to form a stable instantaneous rate (folding
        # sub-millisecond batches directly would blow the rate up).
        self._rate_updated_at: float | None = None
        self._tuples_rate = 0.0
        self._granules_rate = 0.0
        self._pending_tuples = 0
        self._pending_granules = 0
        # When the migration last moved anything (monotonic).  The
        # health engine's stall rule and the flight recorder's
        # migrations.json read this through
        # :meth:`last_advance_seconds`: "running, ETA says 12s, but
        # nothing has advanced for 40s" is the incident signature.
        self._last_advance_at: float | None = None

    # ------------------------------------------------------------------
    # Registry-backed counter views
    # ------------------------------------------------------------------
    def _read(self, key: str) -> int:
        return self._cells[key].value - self._base[key]

    @property
    def granules_migrated(self) -> int:
        return self._read("granules_migrated")

    @property
    def tuples_migrated(self) -> int:
        return self._read("tuples_migrated")

    @property
    def skip_waits(self) -> int:
        return self._read("skip_waits")

    @property
    def migration_txn_aborts(self) -> int:
        return self._read("migration_txn_aborts")

    @property
    def duplicate_attempts(self) -> int:
        return self._read("duplicate_attempts")

    @property
    def granules_total(self) -> int | None:
        value = self._granules_planned.value
        return None if value is None else int(value)

    @granules_total.setter
    def granules_total(self, value: int | None) -> None:
        self._granules_planned.set(value)

    # ------------------------------------------------------------------
    # Mutators (all under the stats latch)
    # ------------------------------------------------------------------
    def mark_started(self) -> None:
        with self._latch:
            if self.started_at is None:
                self.started_at = time.monotonic()
                self._running.set(1)
                # Rate baseline: the first ``add`` measures throughput
                # from migration start, not from its own timestamp.
                self._rate_updated_at = self.started_at

    def mark_completed(self) -> None:
        with self._latch:
            if self.completed_at is None:
                self.completed_at = time.monotonic()
                self._running.set(0)
                self._eta_gauge.set(0.0)
                if self.granules_total:
                    self._progress_gauge.set(1.0)

    def mark_background_started(self) -> None:
        with self._latch:
            if self.background_started_at is None:
                self.background_started_at = time.monotonic()

    def add(self, granules: int = 0, tuples: int = 0) -> None:
        with self._latch:
            self._cells["granules_migrated"].inc(granules)
            self._cells["tuples_migrated"].inc(tuples)
            if granules or tuples:
                self._last_advance_at = time.monotonic()
            self._update_rates(granules, tuples)

    def _update_rates(self, granules: int, tuples: int) -> None:
        """Fold a batch into the EWMA throughput rates (latch held)."""
        self._pending_granules += granules
        self._pending_tuples += tuples
        now = time.monotonic()
        last = self._rate_updated_at
        if last is None:
            self._rate_updated_at = now
            return
        dt = now - last
        if dt < 0.01:
            return  # keep accumulating; too short for a stable rate
        alpha = 1.0 - math.exp(-dt / _RATE_TAU_SECONDS)
        self._granules_rate += alpha * (self._pending_granules / dt - self._granules_rate)
        self._tuples_rate += alpha * (self._pending_tuples / dt - self._tuples_rate)
        self._pending_granules = 0
        self._pending_tuples = 0
        self._rate_updated_at = now
        self._tuples_rate_gauge.set(self._tuples_rate)
        total = self.granules_total
        if total:
            self._progress_gauge.set(
                min(1.0, self._read("granules_migrated") / total)
            )
        self._eta_gauge.set(self._eta_locked())

    def add_skip_wait(self, count: int = 1) -> None:
        with self._latch:
            self._cells["skip_waits"].inc(count)

    def add_abort(self) -> None:
        with self._latch:
            self._cells["migration_txn_aborts"].inc()

    def add_duplicates(self, count: int) -> None:
        with self._latch:
            self._cells["duplicate_attempts"].inc(count)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """All counters read under one latch acquisition — consumers
        (``engine.progress()``, the bench pollers) would otherwise see
        torn values, e.g. ``granules_migrated`` after an ``add`` but
        ``tuples_migrated`` from before it.  The key set is frozen
        public API (the bench pollers index into it)."""
        with self._latch:
            return {
                "started_at": self.started_at,
                "completed_at": self.completed_at,
                "background_started_at": self.background_started_at,
                "granules_migrated": self._read("granules_migrated"),
                "granules_total": self.granules_total,
                "tuples_migrated": self._read("tuples_migrated"),
                "skip_waits": self._read("skip_waits"),
                "migration_txn_aborts": self._read("migration_txn_aborts"),
                "duplicate_attempts": self._read("duplicate_attempts"),
            }

    @property
    def is_complete(self) -> bool:
        return self.completed_at is not None

    @property
    def duration(self) -> float | None:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def progress_fraction(self) -> float | None:
        with self._latch:
            total = self.granules_total
            if total:
                return min(1.0, self._read("granules_migrated") / total)
        return None

    def tuples_per_second(self) -> float:
        """EWMA migration throughput in output tuples/second."""
        with self._latch:
            return self._tuples_rate

    def granules_per_second(self) -> float:
        """EWMA migration throughput in granules/second."""
        with self._latch:
            return self._granules_rate

    def last_advance_seconds(self) -> float | None:
        """Seconds since the migration last moved a granule or tuple;
        ``None`` before the first advance.  Falls back to the start
        timestamp so a migration that never advanced still ages."""
        with self._latch:
            anchor = self._last_advance_at
            if anchor is None:
                anchor = self.started_at
            if anchor is None:
                return None
            return time.monotonic() - anchor

    def eta_seconds(self) -> float | None:
        """Estimated seconds to completion: remaining granules over the
        EWMA granule rate.  ``None`` when the total is unknown (hashmap
        units) or no throughput has been observed yet; ``0.0`` once the
        migration completed."""
        with self._latch:
            return self._eta_locked()

    def _eta_locked(self) -> float | None:
        if self.completed_at is not None:
            return 0.0
        total = self.granules_total
        if not total or self._granules_rate <= 0.0:
            return None
        remaining = total - self._read("granules_migrated")
        if remaining <= 0:
            return 0.0
        return remaining / self._granules_rate
