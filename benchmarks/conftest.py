"""Shared fixtures for the figure benchmarks.

Each ``bench_figNN_*`` file regenerates one figure of the paper's
evaluation at the quick profile (small scale, seconds per run).  The
rendered ASCII figures are appended to ``benchmarks/figures.out`` so a
benchmark run leaves the reproduced series on disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import Profile

_FIGURES_OUT = pathlib.Path(__file__).parent / "figures.out"


@pytest.fixture(scope="session")
def profile() -> Profile:
    return Profile.quick()


@pytest.fixture(scope="session", autouse=True)
def _reset_figures_file():
    _FIGURES_OUT.write_text("")
    yield


@pytest.fixture
def record_figure():
    def _record(result) -> None:
        with _FIGURES_OUT.open("a") as fh:
            fh.write(result.render())
            fh.write("\n\n")

    return _record
