"""Shared ``host:port`` parsing for every place an address is typed.

Three consumers used to split address strings ad hoc — the client's
:func:`repro.net.connect`, the shell's ``--connect``, and now the
router's shard list (``--shards host:port,host:port,...``).  One
helper, one set of rules:

* ``"host:5433"`` → ``("host", 5433)``
* ``"host"``      → ``("host", default_port)``
* ``":5433"``     → ``(default_host, 5433)``
* ``"[::1]:5433"`` → ``("::1", 5433)`` (bracketed IPv6)
* ``"5433"``       → ``(default_host, 5433)`` (bare port, shell idiom)

Bad ports (non-numeric, out of 1–65535) raise ``ValueError`` with a
message naming the offending string — callers surface it verbatim.
"""

from __future__ import annotations

from typing import Sequence

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 5433


def _parse_port(text: str, source: str) -> int:
    try:
        port = int(text)
    except ValueError:
        raise ValueError(f"invalid port {text!r} in address {source!r}") from None
    if not 1 <= port <= 65535:
        raise ValueError(f"port {port} out of range 1-65535 in address {source!r}")
    return port


def parse_hostport(
    address: str,
    default_host: str = DEFAULT_HOST,
    default_port: int = DEFAULT_PORT,
) -> tuple[str, int]:
    """Split one address string into ``(host, port)`` (rules above)."""
    text = address.strip()
    if not text:
        raise ValueError("empty address")
    if text.startswith("["):
        # Bracketed IPv6: [::1] or [::1]:5433.
        end = text.find("]")
        if end < 0:
            raise ValueError(f"unterminated '[' in address {address!r}")
        host = text[1:end] or default_host
        rest = text[end + 1 :]
        if not rest:
            return host, default_port
        if not rest.startswith(":"):
            raise ValueError(f"junk after ']' in address {address!r}")
        return host, _parse_port(rest[1:], address)
    if text.count(":") > 1:
        # Unbracketed IPv6 with no port ("::1").
        return text, default_port
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        return host or default_host, _parse_port(port_text, address)
    if text.isdigit():
        return default_host, _parse_port(text, address)
    return text, default_port


def parse_hostport_list(
    addresses: str | Sequence[str],
    default_host: str = DEFAULT_HOST,
    default_port: int = DEFAULT_PORT,
) -> list[tuple[str, int]]:
    """Parse a comma-separated string (or sequence) of addresses — the
    router's ``--shards`` config.  Empty segments are skipped; an empty
    overall list raises."""
    if isinstance(addresses, str):
        parts: Sequence[str] = addresses.split(",")
    else:
        parts = list(addresses)
    out = [
        parse_hostport(part, default_host, default_port)
        for part in parts
        if str(part).strip()
    ]
    if not out:
        raise ValueError(f"no addresses in {addresses!r}")
    return out
