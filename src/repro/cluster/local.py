"""An in-process cluster: N shard servers + one router, one call.

:class:`LocalCluster` is the cluster analogue of the test suite's
"start a server on port 0" idiom — it builds N independent
:class:`~repro.db.Database` instances (each loading only the TPC-C
warehouses its shard owns, with ``item`` replicated everywhere),
serves each with a :class:`~repro.net.server.BullfrogServer` on an
ephemeral port, and fronts them with a
:class:`~repro.cluster.server.RouterServer`.  Everything lives in one
process (threads, loopback sockets), which is exactly what the tests,
the benchmark, and ``python -m repro.cluster`` need; the pieces are
the same classes a real multi-host deployment would run.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from ..db import Database
from ..net.server import BullfrogServer, ServerConfig
from ..tpcc.loader import load_tpcc
from ..tpcc.schema import ScaleConfig, create_schema
from .router import RouterDatabase
from .server import RouterServer
from .shardmap import ShardMap, warehouses_for_shard

__all__ = ["LocalCluster"]


class LocalCluster:
    """N sharded ``bullfrogd`` processes-worth of servers plus a
    router, all in-process.  Use as a context manager::

        with LocalCluster(n_shards=4, scale=scale) as cluster:
            conn = connect(port=cluster.port)
            ...

    ``shard_faults`` maps shard id -> fault injector (the
    ``repro.testing.faults`` contract) for two-phase-flip fault tests;
    ``router_faults`` injects at the router.  ``obs_factory`` is called
    once per shard (and once for the router) to build per-node
    observability — pass ``Observability`` itself for fully
    instrumented nodes.
    """

    def __init__(
        self,
        n_shards: int = 2,
        scale: ScaleConfig | None = None,
        load: bool = True,
        pool_size: int = 8,
        obs_factory: Callable[[], Any] | None = None,
        shard_faults: dict[int, Any] | None = None,
        router_faults: Any = None,
        shard_config: ServerConfig | None = None,
        router_config: ServerConfig | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.scale = scale or ScaleConfig.small()
        self.shard_dbs: list[Database] = []
        self.shard_servers: list[BullfrogServer] = []
        self.router_db: RouterDatabase | None = None
        self.router: RouterServer | None = None
        shard_faults = shard_faults or {}
        base = shard_config or ServerConfig()
        try:
            for shard in range(n_shards):
                db = Database(obs=obs_factory() if obs_factory else None)
                session = db.connect()
                try:
                    create_schema(session)
                finally:
                    session.close()
                if load:
                    owned = warehouses_for_shard(
                        shard, n_shards, self.scale.warehouses
                    )
                    load_tpcc(db, self.scale, warehouse_ids=owned)
                server = BullfrogServer(
                    db,
                    dataclasses.replace(base, port=0),
                    faults=shard_faults.get(shard),
                ).start()
                self.shard_dbs.append(db)
                self.shard_servers.append(server)
            self.shard_map = ShardMap(addresses=[
                ("127.0.0.1", server.port)  # type: ignore[list-item]
                for server in self.shard_servers
            ])
            self.router_db = RouterDatabase(
                self.shard_map,
                obs=obs_factory() if obs_factory else None,
                pool_size=pool_size,
            )
            # Shards are always ephemeral (port=0 above); the router's
            # config is honoured verbatim so the CLI can pin its port.
            self.router = RouterServer(
                self.router_db,
                router_config or ServerConfig(port=0),
                faults=router_faults,
            ).start()
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self.router is not None and self.router.port is not None
        return self.router.port

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.port}"

    def warehouses_on(self, shard: int) -> list[int]:
        return warehouses_for_shard(shard, self.n_shards, self.scale.warehouses)

    def migrations_complete(self) -> bool:
        return all(
            engine.progress().get("complete", False)
            for db in self.shard_dbs
            for engine in db.migration_engines()
        )

    def shutdown(self) -> None:
        if self.router is not None:
            try:
                self.router.shutdown()
            finally:
                self.router = None
        if self.router_db is not None:
            try:
                self.router_db.close()
            finally:
                self.router_db = None
        for server in self.shard_servers:
            try:
                server.shutdown()
            except Exception:
                pass
        self.shard_servers = []

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
