"""``bullfrog-router`` as a network daemon.

:class:`RouterServer` is :class:`~repro.net.server.BullfrogServer`
verbatim — event loop, worker pool, prepared statements, pipelining,
tracing, drain — pointed at a :class:`~repro.cluster.router.RouterDatabase`
so every session it creates routes to shards.  The subclass only adds
the cluster-flavoured META verbs and folds per-shard pool health into
``bullfrog_stat_network``.

META additions (same wire frames, extensible vocabulary):

* ``shards [json]`` — per-shard address, health, epoch, gate state,
  migration progress, and pool stats.
* ``cluster migrate <scenario>`` — run the two-phase epoch flip +
  per-shard lazy migrations from any client (``\\shards`` and the
  cluster tour use it).
* ``progress`` — aggregated across shards (each shard's own
  ``progress`` output under a ``shard N:`` header).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ProtocolError, ReproError
from ..net.server import BullfrogServer, ServerConfig
from .router import RouterDatabase

__all__ = ["RouterServer", "serve_router"]


class RouterServer(BullfrogServer):
    """A shard-aware router speaking the unchanged wire protocol."""

    db: RouterDatabase

    def __init__(
        self,
        db: RouterDatabase,
        config: ServerConfig | None = None,
        faults: Any = None,
    ) -> None:
        if not isinstance(db, RouterDatabase):
            raise TypeError("RouterServer requires a RouterDatabase")
        super().__init__(db, config, faults=faults)

    # ------------------------------------------------------------------
    def _run_meta(self, command: str) -> str:
        parts = command.split(None, 1)
        name = parts[0] if parts else ""
        arg = parts[1] if len(parts) > 1 else ""
        if name == "shards":
            status = self.db.shard_status()
            if arg == "json":
                return json.dumps(status, indent=2)
            return self._render_shards(status)
        if name == "cluster":
            sub = arg.split()
            if len(sub) == 2 and sub[0] == "migrate":
                return json.dumps(self.db.cluster_migrate(sub[1]))
            raise ProtocolError(f"unknown cluster command {arg!r}")
        if name == "progress":
            return self._cluster_progress()
        return super()._run_meta(command)

    def _render_shards(self, status: list[dict]) -> str:
        lines = []
        for entry in status:
            pool = entry["pool"]
            if entry["healthy"]:
                migration = entry.get("migration_complete")
                detail = (
                    f"epoch={entry.get('epoch')} "
                    f"gate={'open' if entry.get('gate_open') else 'CLOSED'} "
                    + ("migration=done" if migration
                       else "migration=running" if migration is False
                       else "migration=none")
                )
            else:
                detail = "UNREACHABLE"
            lines.append(
                f"  shard {entry['shard']}  {entry['addr']:<21} {detail}  "
                f"pool {pool['in_use']}/{pool['size']} in use, "
                f"{pool['reconnects']} reconnects"
            )
        return "\n".join(lines) or "(no shards)"

    def _cluster_progress(self) -> str:
        blocks = []
        for shard, admin in enumerate(self.db.admins):
            try:
                body = admin.meta("progress")
            except (ReproError, OSError) as exc:
                body = f"  (unreachable: {exc})"
            blocks.append(f"shard {shard}:\n{body}")
        return "\n".join(blocks)

    # ------------------------------------------------------------------
    def _register_network_view(self) -> None:
        """Client rows from the base server, plus one synthetic row per
        shard pool so ``bullfrog_stat_network`` shows both sides of the
        router: who is connected to us, and how our backend pools are
        doing (satellite: surface :meth:`ConnectionPool.stats`)."""
        super()._register_network_view()
        view = self.db.catalog._virtual["bullfrog_stat_network"]
        inner = view.producer
        pools = self.db.pools
        addresses = self.db.shard_map.addresses

        def produce(ctx: Any) -> list[tuple]:
            rows = inner(ctx)
            for shard, pool in enumerate(pools):
                stats = pool.stats()
                host, port = addresses[shard]
                rows.append((
                    -(shard + 1),             # conn_id: negative = pool
                    f"{host}:{port}",
                    f"shard{shard}:pool",
                    0.0,
                    0.0,
                    False,
                    stats["in_use"],          # statements -> in use
                    stats["reconnects"],      # transactions -> reconnects
                    stats["idle"],            # bytes_in -> idle conns
                    stats["size"],            # bytes_out -> pool size
                    stats["health_check_failures"],
                    0,
                ))
            return rows

        self.db.catalog._virtual["bullfrog_stat_network"] = type(view)(
            view.name, view.column_names, view.types, produce
        )


def serve_router(
    db: RouterDatabase, config: ServerConfig | None = None, faults: Any = None
) -> RouterServer:
    """Start a router server and return it (non-blocking)."""
    return RouterServer(db, config, faults=faults).start()
