"""``bullfrogd``: an event-loop socket server in front of a Database.

One I/O thread multiplexes **every** socket through a
:mod:`selectors` event loop — accepts, reads (frame reassembly from a
per-connection input buffer), and writes (per-connection outbound
buffers, flushed opportunistically from workers and drained by the
loop when the kernel buffer fills).  Decoded frames are queued per
connection and executed by a small worker pool; a connection is
dispatched to at most one worker at a time, so statements on its
dedicated :class:`~repro.db.Session` stay strictly ordered even when
the client **pipelines** many frames before reading a single reply.
Idle connections cost one selector registration and a few KB — no
thread — which is what lets one ``bullfrogd`` hold thousands of parked
clients.

Connection affinity keeps the hot path fast: while a worker owns a
connection, the connection's selector READ interest is switched off
and the worker reads the socket directly, lingering ``_HOT_POLL``
seconds after draining the inbox in case the next frame is already in
flight.  A chatty terminal therefore runs request → reply on a single
thread (no selector round trip, no cross-thread queue handoff, ~the
latency of a thread-per-connection server), while parked connections
still cost only a selector slot.  Workers never linger when other
connections are waiting for a worker, so affinity cannot starve the
pool.

The worker pool is elastic: ``workers`` threads are permanent, and
when every worker is blocked (strict-2PL lock waits can park a worker
mid-statement while the lock holder's COMMIT frame sits queued behind
it) the server spawns transient workers up to ``max_workers`` so
pipelined frames keep draining; transients exit after
``worker_keepalive`` seconds idle.

Prepared statements: PARSE caches the parsed AST server-side, keyed
per connection; EXECUTE binds parameters (inline, or from a BIND
portal) and runs :meth:`Session.execute_statement` directly — no SQL
text, no tokenizer, no parser on the hot path.  Cached statements
record the schema epoch they were parsed under and transparently
re-parse after a migration's logical switch bumps the epoch; execution
against a retired table still raises ``SchemaVersionError``, so the
paper's front-end-restart story is unchanged for prepared clients.

Connection lifecycle guarantees (unchanged from the threaded server):

* **Abrupt-disconnect cleanup** — any way a connection dies (reset,
  EOF mid-frame, protocol garbage, injected read/write fault, timeout
  kill) funnels into one retire path that rolls back the session's
  open transaction and releases its locks via ``Session.close()``.
* **Admission control** — beyond ``max_connections`` the server sends
  a structured ``ServerBusyError`` frame (SQLSTATE 53300) and closes.
* **Timeouts** — an idle connection (no frame for ``idle_timeout``,
  and nothing queued or executing) is closed with an
  ``IdleTimeoutError`` frame by the loop's bookkeeping tick; a
  statement running longer than ``statement_timeout`` gets its
  connection killed by a watchdog timer.
* **Graceful shutdown** — ``shutdown()`` stops accepting, immediately
  retires idle out-of-transaction connections with a
  ``ServerShutdownError`` frame, lets in-flight transactions drain
  until ``drain_timeout`` (workers retire their connection at the
  first statement boundary outside a transaction), then force-closes
  stragglers.

Fault seams ``net.accept`` / ``net.read`` / ``net.write`` follow the
:mod:`repro.core.faults` contract (``is not None`` guard, ABORT at a
net seam = the I/O "fails"); ``net.read`` fires once per decoded
frame, ``net.write`` once per response frame.  Per-connection metrics
live in the attached observability registry and the
``bullfrog_stat_network`` system view.
"""

from __future__ import annotations

import json
import queue
import select
import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from .. import __version__ as _SERVER_VERSION
from ..catalog.catalog import VirtualTable
from ..db import Database, Result, Session
from ..errors import (
    IdleTimeoutError,
    ProtocolError,
    ReproError,
    ServerBusyError,
    ServerShutdownError,
    StatementTimeoutError,
)
from ..obs.registry import NULL_METRIC
from ..obs.tracectx import TraceContext
from ..obs.tracectx import activate as _trace_activate
from ..obs.tracectx import deactivate as _trace_deactivate
from ..sql import ast_nodes as ast
from ..txn import IsolationLevel
from ..types import SqlType, TypeKind
from . import protocol

_RECV_CHUNK = 65536

# How long a worker lingers on its connection's socket after draining
# the inbox, hoping the next frame is already in flight.  A hit keeps
# the whole request on one thread (no selector round trip, no queue
# handoff) — chatty connections get thread-per-connection latency while
# parked ones cost only a selector slot.
_HOT_POLL = 0.0005

# Replies are flushed once per statement boundary, not once per frame;
# this caps how much reply data may accumulate before an inline flush
# (large result sets stream in HIWAT-sized writes).
_FLUSH_HIWAT = 262144


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 5433  # 0 = ephemeral (tests)
    max_connections: int = 64
    backlog: int = 16  # bounded TCP accept queue
    idle_timeout: float | None = None
    statement_timeout: float | None = None
    drain_timeout: float = 5.0
    batch_rows: int = 256  # result-set streaming granularity
    workers: int = 4  # permanent execution workers
    max_workers: int = 64  # elastic ceiling (lock waits park workers)
    worker_keepalive: float = 10.0  # transient worker idle lifetime
    max_prepared: int = 1024  # per-connection prepared-statement cap
    tick: float = 0.05  # event-loop bookkeeping cadence
    # Monitoring: when the Database runs instrumented, start() attaches
    # the metrics-history sampler + health engine + flight recorder
    # (obs.attach_monitoring) so `\top` over the wire, /healthz, and
    # incident bundles work out of the box.  No-op when obs is detached.
    monitor: bool = True
    monitor_interval: float = 0.25  # history sampling cadence (seconds)
    monitor_capacity: int = 240  # history ring width (samples)
    incident_dir: str | None = None  # flight-recorder output (default results/incidents)
    # Cluster two-phase epoch flip: how long a PREPARE may sit without
    # its COMMIT/ABORT before the shard aborts unilaterally (coordinator
    # died between the phases), and how long a gated statement waits for
    # the flip to finish before running anyway.
    epoch_prepare_timeout: float = 10.0
    epoch_gate_timeout: float = 30.0


class _Prepared:
    """One server-side prepared statement (per connection)."""

    __slots__ = ("name", "sql", "stmt", "epoch")

    def __init__(self, name: str, sql: str, stmt: ast.Statement,
                 epoch: int) -> None:
        self.name = name
        self.sql = sql
        self.stmt = stmt
        self.epoch = epoch


class _Connection:
    """Server-side bookkeeping for one client socket.

    ``lock`` guards the scheduling state (``inbox`` / ``scheduled`` /
    ``eof`` / ``retired``); ``out_lock`` guards the outbound buffer and
    ``doomed``.  ``inbuf`` is touched only by whichever thread is
    allowed to read the socket right now: the I/O thread while the
    connection is parked (READ interest on), or the owning worker on
    the hot path (READ interest off).  ``sel_mask`` is the current
    selector interest and is touched only by the I/O thread.
    """

    __slots__ = (
        "id", "sock", "addr", "session", "state", "doomed",
        "connected_at", "last_activity", "statements", "transactions",
        "bytes_in", "bytes_out", "out_hiwat",
        "inbuf", "inbox", "scheduled", "eof", "eof_cause", "retired",
        "greeted", "trace", "trace_ctx", "prepared", "portals", "lock",
        "out_lock", "outbuf", "want_write", "sel_mask",
    )

    def __init__(self, conn_id: int, sock: socket.socket, addr: Any,
                 session: Session) -> None:
        self.id = conn_id
        self.sock = sock
        self.addr = addr
        self.session = session
        self.state = "idle"  # idle | active | closing
        self.doomed: BaseException | None = None
        self.connected_at = time.monotonic()
        self.last_activity = self.connected_at
        self.statements = 0
        self.transactions = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.out_hiwat = 0  # outbound-buffer high-water mark (bytes)
        self.inbuf = bytearray()
        # (frame type, payload, enqueue perf_counter) — the timestamp
        # is what prices the net_queue wait class.
        self.inbox: deque[tuple[int, bytes, float]] = deque()
        self.scheduled = False
        self.eof = False
        self.eof_cause = "eof"
        self.retired = False
        self.greeted = False
        self.trace = False  # client asked for trace trailers (HELLO)
        self.trace_ctx: TraceContext | None = None  # current request hop
        self.prepared: dict[str, _Prepared] = {}
        self.portals: dict[str, tuple] = {}
        self.lock = threading.Lock()
        self.out_lock = threading.Lock()
        self.outbuf = bytearray()
        self.want_write = False
        self.sel_mask = 0  # current selector interest; I/O thread only


class BullfrogServer:
    """A BullFrog database served over TCP."""

    def __init__(
        self,
        db: Database,
        config: ServerConfig | None = None,
        faults: Any = None,
    ) -> None:
        self.db = db
        self.config = config or ServerConfig()
        # Network fault seams follow the core contract: ``None`` by
        # default, one ``is not None`` guard per seam.
        self.faults = faults
        self._listen_sock: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._waker_r: socket.socket | None = None
        self._waker_w: socket.socket | None = None
        self._io_thread: threading.Thread | None = None
        self._ioq: deque[tuple] = deque()  # cross-thread selector requests
        self._work_queue: queue.SimpleQueue = queue.SimpleQueue()
        self._worker_latch = threading.Lock()
        self._worker_threads: list[threading.Thread] = []
        self._idle_workers = 0  # heuristic; GIL-atomic +=/-=, no latch
        self._busy_workers = 0  # workers inside _process right now
        self._transient_workers = 0  # elastic workers currently alive
        self._conns: dict[int, _Connection] = {}
        self._conns_latch = threading.Lock()
        self._next_conn_id = 0
        self._running = False
        self._io_running = False
        self._draining = threading.Event()
        # Whether start() created the history sampler (vs. finding one
        # already attached, e.g. by an embedding application) — shutdown
        # only stops a sampler it owns.
        self._monitor_owns_history = False
        # Cluster epoch flip (DESIGN.md section 16): PREPARE closes the
        # gate — new autocommit statements and BEGINs *wait* here while
        # in-flight transactions run to COMMIT — and COMMIT performs
        # the logical schema switch before reopening it, so no two
        # statements on this shard ever straddle the flip.  The
        # auto-abort timer reopens the gate if the coordinator dies
        # between the phases.
        self._epoch_gate = threading.Event()
        self._epoch_gate.set()
        self._epoch_latch = threading.Lock()
        self._epoch_token: str | None = None
        self._epoch_abort_timer: threading.Timer | None = None
        self._migration_controller: Any = None
        self.port: int | None = None
        self._init_metrics()
        self._register_network_view()
        self._register_server_view()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _init_metrics(self) -> None:
        obs = self.db.obs
        if obs is None or not obs.metrics_enabled:
            null = NULL_METRIC
            self._m_accepted = null
            self._m_rejected = null
            self._m_active = null
            self._m_bytes_in = null
            self._m_bytes_out = null
            self._m_disconnects = null
            self._g_workers_busy = null
            self._g_dispatch_depth = null
            self._rt_cells = {}
            self._rt_fallback = null
            return
        registry = obs.registry
        self._m_accepted = registry.counter(
            "repro_net_connections_accepted_total",
            "client connections admitted by bullfrogd",
        ).cell()
        self._m_rejected = registry.counter(
            "repro_net_connections_rejected_total",
            "client connections refused (admission control / shutdown)",
            labelnames=("reason",),
        )
        self._m_active = registry.gauge(
            "repro_net_active_connections",
            "currently open client connections",
        ).cell()
        bytes_total = registry.counter(
            "repro_net_bytes_total",
            "protocol bytes moved by bullfrogd",
            labelnames=("direction",),
        )
        self._m_bytes_in = bytes_total.labels(direction="in")
        self._m_bytes_out = bytes_total.labels(direction="out")
        self._m_disconnects = registry.counter(
            "repro_net_disconnects_total",
            "connection teardowns by cause",
            labelnames=("cause",),
        )
        # Refreshed on the event-loop tick so the history ring (and
        # therefore incident bundles) records worker-pool saturation
        # over time, not just the instant a view is queried.
        self._g_workers_busy = registry.gauge(
            "repro_net_workers_busy",
            "execution workers currently running a request",
        ).cell()
        self._g_dispatch_depth = registry.gauge(
            "repro_net_dispatch_depth",
            "connections queued for an execution worker",
        ).cell()
        rt = registry.histogram(
            "repro_net_request_seconds",
            "server-side protocol round trip (frame decoded -> last "
            "response byte handed to the kernel)",
            labelnames=("kind",),
        )
        self._rt_cells = {
            kind: rt.labels(kind=kind).observe
            for kind in ("query", "txn", "meta", "ping",
                         "parse", "bind", "execute")
        }
        self._rt_fallback = rt

    # ------------------------------------------------------------------
    # bullfrog_stat_network
    # ------------------------------------------------------------------
    def _register_network_view(self) -> None:
        _INT = SqlType(TypeKind.BIGINT)
        _FLOAT = SqlType(TypeKind.FLOAT)
        _TEXT = SqlType(TypeKind.TEXT)
        _BOOL = SqlType(TypeKind.BOOL)

        def produce(ctx: Any) -> list[tuple]:
            now = time.monotonic()
            with self._conns_latch:
                conns = list(self._conns.values())
            rows = [
                (
                    conn.id,
                    f"{conn.addr[0]}:{conn.addr[1]}" if conn.addr else "?",
                    conn.state,
                    now - conn.connected_at,
                    now - conn.last_activity,
                    conn.session.in_transaction,
                    conn.statements,
                    conn.transactions,
                    conn.bytes_in,
                    conn.bytes_out,
                    len(conn.inbox),
                    conn.out_hiwat,
                )
                for conn in conns
            ]
            rows.sort()
            return rows

        # Overwrites any previous registration (server restart on the
        # same Database), exactly like re-registering a producer.
        self.db.catalog._virtual["bullfrog_stat_network"] = VirtualTable(
            "bullfrog_stat_network",
            (
                "conn_id", "peer", "state", "connected_seconds",
                "idle_seconds", "in_transaction", "statements",
                "transactions", "bytes_in", "bytes_out",
                "inbox_depth", "outbuf_hiwat",
            ),
            (_INT, _TEXT, _TEXT, _FLOAT, _FLOAT, _BOOL, _INT, _INT,
             _INT, _INT, _INT, _INT),
            produce,
        )

    # ------------------------------------------------------------------
    # bullfrog_stat_server (one row of event-loop / worker-pool health)
    # ------------------------------------------------------------------
    def _register_server_view(self) -> None:
        _INT = SqlType(TypeKind.BIGINT)
        _BOOL = SqlType(TypeKind.BOOL)

        def produce(ctx: Any) -> list[tuple]:
            with self._worker_latch:
                workers = len(self._worker_threads)
                transient = self._transient_workers
            with self._conns_latch:
                connections = len(self._conns)
            return [(
                workers,
                self._busy_workers,
                transient,
                self._idle_workers,
                self._work_queue.qsize(),
                connections,
                self.config.max_connections,
                self._draining.is_set(),
            )]

        self.db.catalog._virtual["bullfrog_stat_server"] = VirtualTable(
            "bullfrog_stat_server",
            (
                "workers", "workers_busy", "workers_transient",
                "workers_idle", "dispatch_queue_depth", "connections",
                "max_connections", "draining",
            ),
            (_INT, _INT, _INT, _INT, _INT, _INT, _INT, _BOOL),
            produce,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BullfrogServer":
        if self._running:
            return self
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.config.host, self.config.port))
            sock.listen(self.config.backlog)
            sock.setblocking(False)
        except OSError:
            # A failed bind (port in use) must not leak the socket.
            sock.close()
            raise
        self._listen_sock = sock
        self.port = sock.getsockname()[1]
        self._selector = selectors.DefaultSelector()
        self._selector.register(sock, selectors.EVENT_READ, "listen")
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)
        self._selector.register(self._waker_r, selectors.EVENT_READ, "waker")
        self._running = True
        self._io_running = True
        self._io_thread = threading.Thread(
            target=self._io_loop, daemon=True, name="bullfrogd-io"
        )
        self._io_thread.start()
        with self._worker_latch:
            for i in range(self.config.workers):
                self._spawn_worker_locked(transient=False)
        self._attach_monitoring()
        return self

    def _attach_monitoring(self) -> None:
        """Wire the history sampler / health engine / flight recorder
        onto the database's observability bundle, plus a server-local
        worker-saturation rule.  Skipped when observability is detached
        or ``config.monitor`` is off — the zero-cost contract holds."""
        obs = self.db.obs
        if obs is None or not obs.metrics_enabled or not self.config.monitor:
            return
        history = obs.history
        self._monitor_owns_history = history is None or not history.running
        obs.attach_monitoring(
            self.db,
            interval=self.config.monitor_interval,
            capacity=self.config.monitor_capacity,
            incident_dir=self.config.incident_dir,
        )
        health = obs.health
        if any(rule.name == "worker_saturation" for rule in health.rules):
            return  # restart on the same Database: rule already wired
        from ..obs.health import WARN, ThresholdRule

        def saturation(_ctx) -> float:
            with self._worker_latch:
                workers = len(self._worker_threads)
            if workers == 0 or self._busy_workers < workers:
                return 0.0
            return float(self._work_queue.qsize())

        health.add_rule(ThresholdRule(
            "worker_saturation",
            saturation,
            bound=4.0 * max(self.config.workers, 1),
            severity=WARN,
            window=self.config.monitor_interval,
            description="dispatch backlog while every worker is busy",
        ))

    def monitor_summary(self) -> dict:
        """One merged dict for the shell's ``\\top`` renderer: the
        history summary plus health report plus live worker/inbox
        stats.  Served by ``META top json``."""
        obs = self.db.obs
        history = getattr(obs, "history", None) if obs is not None else None
        summary: dict = history.summary() if history is not None else {}
        health = getattr(obs, "health", None) if obs is not None else None
        if health is not None:
            summary["health"] = health.report(max_age=1.0)
        with self._worker_latch:
            workers = len(self._worker_threads)
            transient = self._transient_workers
        summary["server"] = {
            "workers": workers,
            "busy": self._busy_workers,
            "transient": transient,
            "idle": self._idle_workers,
            "dispatch_queue_depth": self._work_queue.qsize(),
            "connections": self.active_connections(),
            "max_connections": self.config.max_connections,
            "draining": self._draining.is_set(),
        }
        return summary

    def __enter__(self) -> "BullfrogServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    @property
    def address(self) -> tuple[str, int]:
        assert self.port is not None, "server not started"
        return (self.config.host, self.port)

    def active_connections(self) -> int:
        with self._conns_latch:
            return len(self._conns)

    def io_thread_count(self) -> int:
        """How many threads multiplex sockets (always 1: the loop)."""
        return 1 if self._io_running else 0

    def worker_count(self) -> int:
        with self._worker_latch:
            return len(self._worker_threads)

    def _wake(self) -> None:
        waker = self._waker_w
        if waker is None:
            return
        try:
            waker.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe already full = loop already waking

    # ------------------------------------------------------------------
    # Event loop (the single I/O thread)
    # ------------------------------------------------------------------
    def _io_loop(self) -> None:
        sel = self._selector
        assert sel is not None
        next_tick = time.monotonic()
        while self._io_running:
            try:
                events = sel.select(self.config.tick)
            except OSError:
                events = []
            for key, mask in events:
                tag = key.data
                if tag == "waker":
                    try:
                        while self._waker_r.recv(4096):  # type: ignore[union-attr]
                            pass
                    except (BlockingIOError, OSError):
                        pass
                elif tag == "listen":
                    self._handle_accept()
                else:
                    conn: _Connection = tag
                    if conn.retired:
                        continue
                    if mask & selectors.EVENT_WRITE:
                        self._handle_writable(conn)
                    if mask & selectors.EVENT_READ and not conn.retired:
                        self._handle_readable(conn)
            self._drain_ioq()
            now = time.monotonic()
            if now >= next_tick:
                next_tick = now + self.config.tick
                self._check_idle_timeouts(now)
                # NULL_METRIC no-ops when observability is detached.
                self._g_workers_busy.set(self._busy_workers)
                self._g_dispatch_depth.set(self._work_queue.qsize())

    def _drain_ioq(self) -> None:
        """Apply selector mutations requested by other threads — all
        register/modify/unregister calls happen on the I/O thread."""
        sel = self._selector
        assert sel is not None
        while True:
            try:
                req = self._ioq.popleft()
            except IndexError:
                return
            op = req[0]
            if op == "want_write":
                conn = req[1]
                if conn.retired or conn.want_write:
                    continue
                self._sel_update(conn, conn.sel_mask | selectors.EVENT_WRITE)
                conn.want_write = True
            elif op == "resume_read":
                # A worker parked its connection: hand the socket back
                # to the event loop.  Level-triggered readiness means
                # any bytes that arrived while ownership was in flight
                # surface on the very next select().
                conn = req[1]
                if conn.retired:
                    continue
                self._sel_update(conn, conn.sel_mask | selectors.EVENT_READ)
            elif op == "close":
                conn = req[1]
                with conn.out_lock:
                    try:
                        self._flush_out_locked(conn)
                    except OSError:
                        pass
                self._sel_update(conn, 0)
                try:
                    conn.sock.close()
                except OSError:
                    pass
            elif op == "stop_accept":
                if self._listen_sock is not None:
                    try:
                        sel.unregister(self._listen_sock)
                    except (KeyError, ValueError, OSError):
                        pass
                    try:
                        self._listen_sock.close()
                    except OSError:
                        pass

    def _sel_update(self, conn: _Connection, mask: int) -> None:
        """Move one socket to a new selector interest set (I/O thread
        only).  ``mask`` 0 means unregistered — the state of a socket
        whose owning worker is reading it directly.  On any selector
        error the socket is forced out of the selector; the close path
        cleans up the fd."""
        sel = self._selector
        if sel is None or conn.sel_mask == mask:
            return
        try:
            if mask == 0:
                sel.unregister(conn.sock)
            elif conn.sel_mask == 0:
                sel.register(conn.sock, mask, conn)
            else:
                sel.modify(conn.sock, mask, conn)
            conn.sel_mask = mask
        except (KeyError, ValueError, OSError):
            conn.sel_mask = 0
            try:
                sel.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass

    # ------------------------------------------------------------------
    # Accept + admission control
    # ------------------------------------------------------------------
    def _handle_accept(self) -> None:
        assert self._listen_sock is not None
        while True:
            try:
                sock, addr = self._listen_sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listen socket closed by shutdown()
            faults = self.faults
            if faults is not None and "net.accept" in faults.watching:
                try:
                    faults.fire("net.accept", addr=addr)
                except Exception:
                    # Injected accept failure: the connection is dropped
                    # before admission, exactly like a dying client.
                    self._m_rejected.labels(reason="fault").inc()
                    sock.close()
                    continue
            obs = self.db.obs
            if obs is not None and obs.active:
                obs.count("net.accept")
            if self._draining.is_set():
                self._refuse(sock, ServerShutdownError("server is shutting down"))
                self._m_rejected.labels(reason="shutdown").inc()
                continue
            with self._conns_latch:
                admitted = len(self._conns) < self.config.max_connections
                if admitted:
                    self._next_conn_id += 1
                    conn_id = self._next_conn_id
            if not admitted:
                self._refuse(
                    sock,
                    ServerBusyError(
                        f"server busy: max_connections "
                        f"({self.config.max_connections}) reached"
                    ),
                )
                self._m_rejected.labels(reason="busy").inc()
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            conn = _Connection(conn_id, sock, addr, self.db.connect())
            with self._conns_latch:
                self._conns[conn_id] = conn
            self._sel_update(conn, selectors.EVENT_READ)
            self._m_accepted.inc()
            self._m_active.inc()

    def _refuse(self, sock: socket.socket, exc: ReproError) -> None:
        """Reject a pre-admission socket with a clean error frame (the
        accepted socket is still in blocking mode here)."""
        try:
            sock.sendall(protocol.encode_error(exc, in_transaction=False))
        except OSError:
            pass
        finally:
            sock.close()

    # ------------------------------------------------------------------
    # Read path: frame reassembly + per-frame fault seam
    # ------------------------------------------------------------------
    def _handle_readable(self, conn: _Connection) -> None:
        try:
            while True:
                chunk = conn.sock.recv(_RECV_CHUNK)
                if not chunk:
                    cause = "protocol_error" if conn.inbuf else "eof"
                    self._on_disconnect(conn, cause)
                    return
                conn.inbuf += chunk
                if len(chunk) < _RECV_CHUNK:
                    break
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._on_disconnect(conn, "abrupt_disconnect")
            return
        self._pump_frames(conn)

    def _pump_frames(self, conn: _Connection) -> None:
        """Decode every complete frame out of the input buffer, firing
        the ``net.read`` seam once per frame, then hand the batch to
        the worker pool."""
        frames: list[tuple[int, bytes]] = []
        pos = 0
        died = False
        faults = self.faults
        obs = self.db.obs
        try:
            while True:
                decoded = protocol.decode_frame(conn.inbuf, pos)
                if decoded is None:
                    break
                ftype, payload, pos = decoded
                if faults is not None and "net.read" in faults.watching:
                    try:
                        faults.fire("net.read", conn_id=conn.id)
                    except Exception:
                        # Injected ABORT = "this read failed": frames
                        # already decoded still execute, then the
                        # connection dies like a reset peer.
                        died = True
                        break
                if obs is not None and obs.active:
                    obs.count("net.read")
                frames.append((ftype, payload))
        except ProtocolError as exc:
            # Garbage framing: answer with a structured 08P01 frame if
            # the socket still works, then hang up.
            del conn.inbuf[:pos]
            self._send_best_effort(conn, protocol.encode_error(
                exc, conn.session.in_transaction
            ))
            self._on_disconnect(conn, "protocol_error")
            return
        del conn.inbuf[:pos]
        if frames:
            conn.last_activity = time.monotonic()
            size = sum(protocol.HEADER_SIZE + len(p) for _, p in frames)
            conn.bytes_in += size
            self._m_bytes_in.inc(size)
            # One timestamp for the whole batch: frames decoded
            # together were enqueued together, and the net_queue wait
            # measures inbox-to-worker latency, not intra-batch skew.
            enq = time.perf_counter()
            with conn.lock:
                conn.inbox.extend((f, p, enq) for f, p in frames)
                newly = not conn.scheduled and not conn.retired
                if newly:
                    conn.scheduled = True
            if newly:
                # Only the I/O thread can newly-schedule a connection
                # (a worker pumping on the hot path already owns it),
                # so mutating the selector here is safe.  READ interest
                # goes dark *before* the worker can see the connection
                # on the queue — from here until _park, the worker is
                # the only thread reading this socket.
                self._sel_update(conn, conn.sel_mask & ~selectors.EVENT_READ)
                self._work_queue.put(conn)
                self._maybe_spawn_worker()
        if died:
            self._on_disconnect(conn, "abrupt_disconnect")

    def _on_disconnect(self, conn: _Connection, cause: str) -> None:
        """The socket is gone (EOF, reset, injected fault).  If no
        worker owns the connection, retire it now; otherwise the worker
        retires it at its next statement boundary."""
        with conn.lock:
            if conn.retired:
                return
            conn.eof = True
            conn.eof_cause = cause
            owner = not conn.scheduled
            if owner:
                conn.retired = True
        if owner:
            self._do_retire(conn, "killed" if conn.doomed is not None else cause)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _flush_out_locked(self, conn: _Connection) -> None:
        """Drain as much outbound buffer as the kernel will take.
        Caller holds ``out_lock``.  Raises OSError on a dead socket."""
        while conn.outbuf:
            mv = memoryview(conn.outbuf)
            try:
                n = conn.sock.send(mv)
            except (BlockingIOError, InterruptedError):
                return
            finally:
                mv.release()
            if n <= 0:
                return
            del conn.outbuf[:n]

    def _handle_writable(self, conn: _Connection) -> None:
        try:
            with conn.out_lock:
                self._flush_out_locked(conn)
                drained = not conn.outbuf
        except OSError:
            self._on_disconnect(conn, "abrupt_disconnect")
            return
        if drained and conn.want_write:
            self._sel_update(conn, conn.sel_mask & ~selectors.EVENT_WRITE)
            conn.want_write = False

    def _send(self, conn: _Connection, frame: bytes) -> None:
        """Queue one response frame.  Replies accumulate in the
        outbound buffer and are flushed at the next statement boundary
        (``_flush_conn``), so one write syscall covers a whole reply —
        or a whole pipelined batch of replies; the high-water mark
        bounds buffering for huge result sets.  Raises OSError when the
        connection is dead/killed."""
        faults = self.faults
        if faults is not None and "net.write" in faults.watching:
            try:
                faults.fire("net.write", conn_id=conn.id)
            except Exception as exc:  # SimulatedCrash (BaseException) passes
                raise OSError(f"injected write failure: {exc}") from exc
        obs = self.db.obs
        if obs is not None and obs.active:
            obs.count("net.write")
        with conn.out_lock:
            if conn.doomed is not None:
                raise OSError("connection was killed")
            conn.outbuf += frame
            buffered = len(conn.outbuf)
            if buffered > conn.out_hiwat:
                conn.out_hiwat = buffered
            if buffered >= _FLUSH_HIWAT:
                self._flush_out_locked(conn)
        conn.bytes_out += len(frame)
        self._m_bytes_out.inc(len(frame))

    def _flush_conn(self, conn: _Connection) -> None:
        """Hand buffered replies to the kernel; if it cannot take them
        all, arm the event loop's WRITE path to drain the rest.  Raises
        OSError on a dead socket."""
        with conn.out_lock:
            if conn.doomed is not None:
                return
            self._flush_out_locked(conn)
            pending = bool(conn.outbuf)
        if pending and not conn.want_write:
            self._ioq.append(("want_write", conn))
            self._wake()

    def _try_send(self, conn: _Connection, frame: bytes) -> None:
        try:
            self._send(conn, frame)
            self._flush_conn(conn)
        except OSError:
            pass

    def _send_best_effort(self, conn: _Connection, frame: bytes) -> None:
        """Farewell frames from the I/O thread: skip seams, never raise."""
        with conn.out_lock:
            if conn.doomed is not None:
                return
            conn.outbuf += frame
            try:
                self._flush_out_locked(conn)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Worker pool (elastic)
    # ------------------------------------------------------------------
    def _spawn_worker_locked(self, transient: bool) -> None:
        index = len(self._worker_threads)
        thread = threading.Thread(
            target=self._worker_loop, args=(transient,), daemon=True,
            name=f"bullfrogd-worker-{index}",
        )
        self._worker_threads.append(thread)
        if transient:
            self._transient_workers += 1
        thread.start()

    def _maybe_spawn_worker(self) -> None:
        """Grow the pool when every worker is busy (a lock-free read of
        the idle count keeps the common dispatch path latch-free; the
        latch is taken only to actually spawn)."""
        if self._idle_workers > 0 or not self._running:
            return
        with self._worker_latch:
            if len(self._worker_threads) < self.config.max_workers:
                self._spawn_worker_locked(transient=True)

    def _worker_loop(self, transient: bool) -> None:
        keepalive = self.config.worker_keepalive
        while True:
            with self._worker_latch:
                self._idle_workers += 1
            try:
                conn = self._work_queue.get(
                    timeout=keepalive if transient else None
                )
            except queue.Empty:
                conn = None  # transient worker idled out
            with self._worker_latch:
                self._idle_workers -= 1
            if conn is None:  # idle exit or shutdown sentinel
                with self._worker_latch:
                    try:
                        self._worker_threads.remove(threading.current_thread())
                    except ValueError:
                        pass
                    if transient:
                        self._transient_workers -= 1
                return
            # Heuristic like _idle_workers: GIL-atomic bumps, no latch.
            self._busy_workers += 1
            try:
                self._process(conn)
            finally:
                self._busy_workers -= 1

    def _process(self, conn: _Connection) -> None:
        """Run one connection's queued frames to exhaustion.  Exactly
        one worker owns a connection at a time (``scheduled``), which
        is what guarantees pipelined replies arrive in request order."""
        while True:
            with conn.lock:
                frame = conn.inbox.popleft() if conn.inbox else None
            if frame is None:
                if self._hot_poll(conn):
                    continue
                if self._park(conn):
                    continue
                return
            conn.state = "active"
            keep = self._handle_frame(conn, frame)
            conn.state = "closing" if conn.doomed is not None else "idle"
            if not keep:
                return
            if conn.doomed is not None:
                if self._mark_retired(conn):
                    self._do_retire(conn, "killed")
                return
            if (
                self._draining.is_set()
                and not conn.session.in_transaction
            ):
                # Drain point: this connection's transaction (if any)
                # just finished; retire it politely.
                if self._mark_retired(conn):
                    self._try_send(conn, protocol.encode_error(
                        ServerShutdownError("server is shutting down"),
                        in_transaction=False,
                    ))
                    self._do_retire(conn, "shutdown")
                return

    def _hot_poll(self, conn: _Connection) -> bool:
        """Linger on the owned connection's socket before parking.
        While a worker owns a connection its selector READ interest is
        off, so the worker may read the socket directly; a hit keeps
        the whole request → reply exchange on one thread, with no
        selector round trip and no queue handoff — a busy terminal gets
        thread-per-connection latency while parked connections still
        cost only a selector slot.  The worker never lingers when other
        connections are waiting for a worker.  Returns True when the
        poll made progress (new frames, or a disconnect for ``_park``
        to act on)."""
        if (
            conn.eof
            or conn.doomed is not None
            or conn.retired
            or self._draining.is_set()
        ):
            return False
        # Linger when no other connection is waiting for a worker —
        # and *always* for a connection inside a transaction: it holds
        # 2PL locks, and gluing its worker to the socket keeps the
        # lock-hold window one poll away from the next frame instead
        # of a full selector round trip, which is what other
        # transactions blocked on those locks are paying for.
        if not conn.session.in_transaction and not self._work_queue.empty():
            return False
        try:
            readable, _, _ = select.select([conn.sock], [], [], _HOT_POLL)
        except (OSError, ValueError):
            return False
        if not readable:
            return False
        self._handle_readable(conn)
        return True

    def _park(self, conn: _Connection) -> bool:
        """Inbox ran dry: release ownership, or retire if the
        connection died while we were executing.  Returns True when new
        frames raced in and the worker should keep going."""
        cause = None
        with conn.lock:
            if conn.inbox:
                return True
            if conn.retired:
                conn.scheduled = False
                return False
            if conn.doomed is not None:
                cause = "killed"
            elif conn.eof:
                cause = conn.eof_cause
            if cause is not None:
                conn.retired = True
            conn.scheduled = False
        if cause is not None:
            self._do_retire(conn, cause)
            return False
        # Hand the socket back to the event loop (READ interest was
        # off for the duration of this worker's ownership).
        self._ioq.append(("resume_read", conn))
        self._wake()
        return False

    def _mark_retired(self, conn: _Connection) -> bool:
        with conn.lock:
            if conn.retired:
                return False
            conn.retired = True
            return True

    def _do_retire(self, conn: _Connection, cause: str) -> None:
        """The single disconnect path: roll back, release, deregister.
        ``Session.close()`` aborts any open transaction, which releases
        every lock the connection held.  Callers must have won the
        ``retired`` flag under ``conn.lock``."""
        conn.state = "closing"
        conn.session.close()
        with self._conns_latch:
            self._conns.pop(conn.id, None)
        self._m_active.dec()
        self._m_disconnects.labels(cause=cause).inc()
        self._ioq.append(("close", conn))
        self._wake()

    # ------------------------------------------------------------------
    # Frame execution
    # ------------------------------------------------------------------
    def _handle_frame(self, conn: _Connection, frame: tuple[int, bytes]) -> bool:
        """Dispatch one frame; returns False when the connection was
        retired (protocol violation, CLOSE, dead socket)."""
        ftype, payload, enq_ts = frame
        try:
            if not conn.greeted:
                # Client-initiated handshake: the first frame must be a
                # HELLO; the WELCOME answers it (version + epoch + id).
                if ftype != protocol.HELLO:
                    raise ProtocolError(
                        f"expected HELLO, got frame type 0x{ftype:02x}"
                    )
                hello = protocol.decode_hello(payload)
                self._apply_hello_options(conn, hello.get("options") or {})
                # The capabilities trailer goes only to clients that
                # asked for tracing — an old client's decode_welcome
                # would reject the extra byte.
                self._send(conn, protocol.encode_welcome(
                    _SERVER_VERSION, self.db.epoch, conn.id,
                    capabilities=protocol.CAP_TRACE if conn.trace else 0,
                ))
                conn.greeted = True
                if not conn.inbox:
                    self._flush_conn(conn)
                return True
            if ftype == protocol.CLOSE:
                if self._mark_retired(conn):
                    self._do_retire(conn, "client_close")
                return False
            began = time.monotonic()
            kind = self._dispatch(conn, ftype, payload, enq_ts)
            ctx, conn.trace_ctx = conn.trace_ctx, None
            if not conn.inbox:
                # Statement boundary with nothing else queued: push the
                # buffered reply (or the whole pipelined batch of
                # replies) to the kernel in one write.  The peek is
                # exact — while this worker owns the connection, only
                # this worker can append to the inbox.
                obs = self.db.obs
                if (
                    ctx is not None
                    and obs is not None and obs.tracing_enabled
                ):
                    flush_us = obs.trace.now_us()
                    self._flush_conn(conn)
                    obs.trace.complete(
                        "net.flush", flush_us, cat="net",
                        args={"trace": ctx.trace_id,
                              "parent": ctx.span_id,
                              "conn": conn.id},
                    )
                else:
                    self._flush_conn(conn)
            observe = self._rt_cells.get(kind)
            if observe is not None:
                observe(time.monotonic() - began)
            return True
        except ProtocolError as exc:
            self._try_send(conn, protocol.encode_error(
                exc, conn.session.in_transaction
            ))
            if self._mark_retired(conn):
                self._do_retire(conn, "protocol_error")
            return False
        except OSError:
            if self._mark_retired(conn):
                cause = "killed" if conn.doomed is not None else "abrupt_disconnect"
                self._do_retire(conn, cause)
            return False
        except Exception as exc:  # noqa: BLE001 - last-resort server guard
            self._try_send(conn, protocol.encode_error(
                exc, conn.session.in_transaction
            ))
            if self._mark_retired(conn):
                self._do_retire(conn, "internal_error")
            return False

    def _continue_trace(
        self, conn: _Connection, trace: tuple[int, int] | None,
        enq_ts: float,
    ) -> TraceContext | None:
        """Continue the client's trace as this request's server hop: a
        context carrying the wire ``trace_id``, parented on the
        client-side span, with the frame's inbox dwell already recorded
        as ``net_queue`` wait (it happened before any statement context
        existed, and the shared accumulator hands it down)."""
        if trace is None:
            return None
        obs = self.db.obs
        if obs is None or not obs.tracing_enabled:
            return None
        ctx = TraceContext(trace[0], None, trace[1])
        queued = max(0.0, time.perf_counter() - enq_ts)
        obs.record_wait("net_queue", queued, ctx)
        end_us = obs.trace.now_us()
        obs.trace.complete(
            "net.queue", end_us - queued * 1e6, cat="net",
            args={
                "trace": ctx.trace_id, "span": ctx.span_id,
                "parent": ctx.parent_id, "conn": conn.id,
                "wait": "net_queue",
            },
            end_us=end_us,
        )
        conn.trace_ctx = ctx
        return ctx

    def _dispatch(
        self, conn: _Connection, ftype: int, payload: bytes, enq_ts: float
    ) -> str:
        if (
            not self._epoch_gate.is_set()
            and not conn.session.in_transaction
            and ftype in (protocol.QUERY, protocol.EXECUTE, protocol.TXN)
        ):
            # Epoch flip in progress: hold *new* work (autocommit
            # statements, BEGINs) at the gate until COMMIT/ABORT
            # reopens it.  Statements inside an already-open
            # transaction pass — they must be able to reach their
            # COMMIT, or the flip could deadlock against 2PL locks.
            # (COMMIT/ROLLBACK frames on an idle session are errors
            # either way, so gating them too is harmless.)
            self._epoch_gate.wait(self.config.epoch_gate_timeout)
        if ftype == protocol.QUERY:
            frame = protocol.decode_query(payload)
            sql, params = frame["sql"], frame["params"]
            self._run_statement(
                conn, lambda: conn.session.execute(sql, params),
                self._continue_trace(conn, frame["trace"], enq_ts),
            )
            return "query"
        if ftype == protocol.EXECUTE:
            frame = protocol.decode_execute(payload)
            ps = conn.prepared.get(frame["name"])
            if ps is None:
                self._send(conn, protocol.encode_error(
                    ProtocolError(
                        f"unknown prepared statement {frame['name']!r}"
                    ),
                    conn.session.in_transaction,
                ))
                return "execute"
            params = frame["params"]
            if params is None:
                params = conn.portals.get(ps.name, ())
            if ps.epoch != self.db.epoch:
                # The logical schema switch (or any DDL) bumped the
                # epoch: re-parse so the cached plan can never straddle
                # schema versions.  Retired-table enforcement still
                # happens at execution, so SchemaVersionError reaches
                # prepared clients exactly like QUERY clients.
                try:
                    ps.stmt = self.db.parse(ps.sql)
                    ps.epoch = self.db.epoch
                except ReproError as exc:
                    self._send(conn, protocol.encode_error(
                        exc, conn.session.in_transaction
                    ))
                    return "execute"
            self._run_statement(
                conn,
                lambda: conn.session.execute_statement(
                    ps.stmt, params, sql_text=ps.sql
                ),
                self._continue_trace(conn, frame["trace"], enq_ts),
            )
            return "execute"
        if ftype == protocol.PARSE:
            frame = protocol.decode_parse(payload)
            name, sql = frame["name"], frame["sql"]
            if (
                name not in conn.prepared
                and len(conn.prepared) >= self.config.max_prepared
            ):
                self._send(conn, protocol.encode_error(
                    ProtocolError(
                        f"prepared-statement cache full "
                        f"({self.config.max_prepared}); PARSE rejected"
                    ),
                    conn.session.in_transaction,
                ))
                return "parse"
            try:
                stmt = self.db.parse(sql)
            except ReproError as exc:
                self._send(conn, protocol.encode_error(
                    exc, conn.session.in_transaction
                ))
                return "parse"
            conn.prepared[name] = _Prepared(name, sql, stmt, self.db.epoch)
            conn.portals.pop(name, None)
            self._send(conn, protocol.encode_parse_ok(name))
            return "parse"
        if ftype == protocol.BIND:
            frame = protocol.decode_bind(payload)
            if frame["name"] not in conn.prepared:
                self._send(conn, protocol.encode_error(
                    ProtocolError(
                        f"unknown prepared statement {frame['name']!r}"
                    ),
                    conn.session.in_transaction,
                ))
                return "bind"
            conn.portals[frame["name"]] = frame["params"]
            self._send(conn, protocol.encode_bind_ok(frame["name"]))
            return "bind"
        if ftype == protocol.TXN:
            frame = protocol.decode_txn(payload)
            self._run_txn(
                conn, frame["op"],
                self._continue_trace(conn, frame["trace"], enq_ts),
            )
            return "txn"
        if ftype == protocol.META:
            command = protocol.decode_meta(payload)["command"]
            try:
                text = self._run_meta(command)
            except ReproError as exc:
                self._send(conn, protocol.encode_error(
                    exc, conn.session.in_transaction
                ))
                return "meta"
            self._send(conn, protocol.encode_meta_result(text))
            return "meta"
        if ftype == protocol.PING:
            self._send(conn, protocol.encode_pong(self.db.epoch))
            return "ping"
        if ftype == protocol.HELLO:
            # A second handshake is harmless; re-welcome.
            hello = protocol.decode_hello(payload)
            self._apply_hello_options(conn, hello.get("options") or {})
            self._send(conn, protocol.encode_welcome(
                _SERVER_VERSION, self.db.epoch, conn.id,
                capabilities=protocol.CAP_TRACE if conn.trace else 0,
            ))
            return "meta"
        raise ProtocolError(f"unexpected frame type 0x{ftype:02x} from client")

    def _apply_hello_options(
        self, conn: _Connection, options: dict[str, str]
    ) -> None:
        """Session options carried on the HELLO trailer:
        ``isolation`` (``snapshot`` / ``read_committed``) and ``trace``
        (the client wants trace trailers; the WELCOME answers with
        ``CAP_TRACE``).  Unknown keys are ignored for forward
        compatibility."""
        isolation = options.get("isolation")
        if isolation is not None:
            try:
                level = IsolationLevel.coerce(isolation)
            except ValueError as exc:
                raise ProtocolError(str(exc)) from None
            if level is not None:
                conn.session.isolation = level
        if options.get("trace") not in (None, "0", ""):
            conn.trace = True

    def _run_statement(
        self,
        conn: _Connection,
        thunk: Callable[[], Result],
        ctx: TraceContext | None = None,
    ) -> None:
        """Execute one statement (parsed or prepared) under the
        statement-timeout watchdog and stream its result.  A non-None
        ``ctx`` (the continued client trace) is parked on the session
        so ``execute_statement`` forks its statement span under the
        server hop, and the hop itself is recorded as ``server.execute``."""
        conn.statements += 1
        watchdog: threading.Timer | None = None
        if self.config.statement_timeout is not None:
            watchdog = threading.Timer(
                self.config.statement_timeout,
                self._kill,
                (
                    conn,
                    StatementTimeoutError(
                        f"statement exceeded statement_timeout "
                        f"({self.config.statement_timeout}s); "
                        "connection terminated"
                    ),
                ),
            )
            watchdog.daemon = True
            watchdog.start()
        obs = self.db.obs if ctx is not None else None
        if obs is not None:
            start_us = obs.trace.now_us()
            conn.session._request_ctx = ctx
        try:
            result = thunk()
        except ReproError as exc:
            if conn.doomed is None:
                self._send(conn, protocol.encode_error(
                    exc, conn.session.in_transaction
                ))
            return
        finally:
            if watchdog is not None:
                watchdog.cancel()
            if obs is not None:
                conn.session._request_ctx = None
                obs.trace.complete(
                    "server.execute", start_us, cat="net",
                    args={"trace": ctx.trace_id, "span": ctx.span_id,
                          "parent": ctx.parent_id, "conn": conn.id},
                )
        if conn.doomed is not None:
            return
        self._send_result(conn, result)

    def _send_result(self, conn: _Connection, result: Result) -> None:
        if result.columns:
            self._send(conn, protocol.encode_row_header(
                result.statement, result.columns
            ))
            batch = self.config.batch_rows
            rows = result.rows
            for start in range(0, len(rows), batch):
                self._send(conn, protocol.encode_row_batch(
                    rows[start : start + batch]
                ))
        self._send(conn, protocol.encode_complete(
            result.statement,
            result.rowcount,
            conn.session.in_transaction,
            self.db.epoch,
        ))

    def _run_txn(
        self, conn: _Connection, op: int,
        ctx: TraceContext | None = None,
    ) -> None:
        session = conn.session
        obs = self.db.obs if ctx is not None else None
        if obs is not None:
            # Transaction control skips execute_statement, so the hop
            # context is activated here directly — COMMIT's WAL append
            # (and its ``wal`` wait) lands under the client's trace.
            start_us = obs.trace.now_us()
            token = _trace_activate(ctx)
        try:
            if op == protocol.TXN_BEGIN:
                session.begin()
                tag = "BEGIN"
            elif op == protocol.TXN_COMMIT:
                session.commit()
                conn.transactions += 1
                tag = "COMMIT"
            else:
                session.rollback()
                conn.transactions += 1
                tag = "ROLLBACK"
        except ReproError as exc:
            self._send(conn, protocol.encode_error(
                exc, session.in_transaction
            ))
            return
        finally:
            if obs is not None:
                _trace_deactivate(token)
                obs.trace.complete(
                    "server.txn", start_us, cat="net",
                    args={"trace": ctx.trace_id, "span": ctx.span_id,
                          "parent": ctx.parent_id, "conn": conn.id,
                          "op": op},
                )
        self._send(conn, protocol.encode_complete(
            tag, 0, session.in_transaction, self.db.epoch
        ))

    # ------------------------------------------------------------------
    # Kills and timeouts
    # ------------------------------------------------------------------
    def _kill(self, conn: _Connection, exc: BaseException) -> None:
        """Doom a connection from another thread (watchdog/shutdown):
        mark it, push a best-effort error frame, sever the socket.  The
        I/O thread (EOF) or the owning worker then retires it through
        the normal path."""
        with conn.out_lock:
            if conn.doomed is not None:
                return
            conn.doomed = exc
            try:
                self._flush_out_locked(conn)
            except OSError:
                pass
            frame = protocol.encode_error(exc, conn.session.in_transaction)
            try:
                # Switch to a short blocking send so the farewell frame
                # can never be torn mid-frame by a full kernel buffer.
                conn.sock.settimeout(0.5)
                conn.sock.sendall(frame)
            except OSError:
                pass
            finally:
                try:
                    conn.sock.setblocking(False)
                except OSError:
                    pass
        try:
            conn.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._wake()

    def _check_idle_timeouts(self, now: float) -> None:
        timeout = self.config.idle_timeout
        if timeout is None:
            return
        with self._conns_latch:
            conns = list(self._conns.values())
        for conn in conns:
            with conn.lock:
                # A connection with queued or executing work is not
                # idle, however long ago its last frame arrived.
                parked = (
                    not conn.scheduled and not conn.inbox and not conn.retired
                )
                expired = parked and now - conn.last_activity > timeout
                if expired:
                    conn.retired = True
            if expired:
                self._kill(conn, IdleTimeoutError(
                    f"idle timeout ({timeout}s) exceeded"
                ))
                self._do_retire(conn, "idle_timeout")

    # ------------------------------------------------------------------
    # META passthrough (remote shell support)
    # ------------------------------------------------------------------
    def _run_meta(self, command: str) -> str:
        parts = command.split(None, 1)
        name = parts[0] if parts else ""
        arg = parts[1] if len(parts) > 1 else ""
        if name == "metrics":
            obs = self.db.obs
            if obs is None or not obs.metrics_enabled:
                return "(observability detached)"
            from ..obs import render_prometheus, snapshot_json

            if arg == "json":
                return snapshot_json(obs.registry, indent=2)
            return render_prometheus(obs.registry)
        if name == "progress":
            return self._format_progress()
        if name == "tables":
            lines = [
                f"  {t.schema.name}{' (retired)' if t.retired else ''}"
                f"  [{len(t)} rows]"
                for t in self.db.catalog.tables()
            ]
            return "\n".join(lines) or "(no tables)"
        if name == "top":
            summary = self.monitor_summary()
            if arg == "json":
                return json.dumps(summary)
            from ..shell import render_top  # deferred: shell imports net

            return render_top(summary)
        if name == "history":
            obs = self.db.obs
            history = getattr(obs, "history", None) if obs is not None else None
            if history is None:
                return "(no history sampler attached)"
            args = arg.split()
            as_json = bool(args) and args[0] == "json"
            try:
                window = float(args[-1]) if len(args) > (1 if as_json else 0) else None
            except ValueError:
                raise ProtocolError(f"bad history window {args[-1]!r}")
            payload = history.to_json(window)
            if as_json:
                return json.dumps(payload)
            from ..shell import render_top

            return render_top(payload["summary"])
        if name in ("health", "healthz"):
            obs = self.db.obs
            health = getattr(obs, "health", None) if obs is not None else None
            if health is None:
                return "(no health engine attached)"
            report = health.report(max_age=1.0)
            if arg == "json":
                return json.dumps(report)
            from ..shell import format_health

            return format_health(report)
        if name == "dump":
            obs = self.db.obs
            flight = getattr(obs, "flight", None) if obs is not None else None
            if flight is None:
                return "(no flight recorder attached)"
            path = flight.dump(arg or "meta", force=True)
            return f"incident bundle written: {path}"
        if name == "describe" and arg:
            table = self.db.catalog.table(arg)
            lines = [
                f"  {c.name}  {c.type.render()}"
                + ("  NOT NULL" if c.not_null else "")
                for c in table.schema.columns
            ]
            if table.schema.primary_key:
                lines.append(
                    "  PRIMARY KEY "
                    f"({', '.join(table.schema.primary_key.columns)})"
                )
            for index_name in table.indexes:
                lines.append(f"  INDEX {index_name}")
            return "\n".join(lines)
        if name == "epoch":
            return self._run_epoch_meta(arg)
        if name == "migrate" and arg:
            return self._run_migrate(arg)
        raise ProtocolError(f"unknown meta command {command!r}")

    # ------------------------------------------------------------------
    # Cluster epoch flip (shard side of the two-phase switch)
    # ------------------------------------------------------------------
    def _run_epoch_meta(self, arg: str) -> str:
        parts = arg.split()
        verb = parts[0] if parts else "status"
        if verb == "status":
            engines = []
            for engine in self.db.migration_engines():
                progress = engine.progress()
                engines.append({
                    "migration": progress.get("migration"),
                    "complete": bool(progress.get("complete")),
                })
            with self._epoch_latch:
                token = self._epoch_token
            return json.dumps({
                "epoch": self.db.epoch,
                "gate_open": self._epoch_gate.is_set(),
                "prepared": token,
                "migrations": engines,
            })
        if verb == "prepare" and len(parts) == 2:
            return self._epoch_prepare(parts[1])
        if verb == "commit" and len(parts) == 3:
            return self._epoch_commit(parts[1], parts[2])
        if verb == "abort" and len(parts) == 2:
            return self._epoch_abort(parts[1])
        raise ProtocolError(f"unknown meta command 'epoch {arg}'")

    def _epoch_prepare(self, token: str) -> str:
        faults = self.faults
        if faults is not None and "cluster.prepare" in faults.watching:
            faults.fire("cluster.prepare", token=token)
        with self._epoch_latch:
            if self._epoch_token is not None and self._epoch_token != token:
                raise ProtocolError(
                    f"epoch flip already prepared "
                    f"(token {self._epoch_token!r})"
                )
            self._epoch_token = token
            self._epoch_gate.clear()
            if self._epoch_abort_timer is not None:
                self._epoch_abort_timer.cancel()
            timer = threading.Timer(
                self.config.epoch_prepare_timeout,
                self._epoch_auto_abort, (token,),
            )
            timer.daemon = True
            timer.start()
            self._epoch_abort_timer = timer
        return json.dumps({"prepared": token, "epoch": self.db.epoch})

    def _epoch_commit(self, token: str, scenario: str) -> str:
        with self._epoch_latch:
            if self._epoch_token != token:
                raise ProtocolError(
                    f"epoch commit {token!r} does not match prepared "
                    f"token {self._epoch_token!r}"
                )
        faults = self.faults
        if faults is not None and "cluster.commit" in faults.watching:
            faults.fire("cluster.commit", token=token)
        try:
            # The logical switch happens inside submit() while the gate
            # is closed: nothing new starts under the old schema, and
            # nothing new starts under the new one until the gate
            # reopens below — the shard never serves mixed schemas.
            self._submit_scenario(scenario)
        finally:
            self._epoch_release(token)
        return json.dumps({
            "committed": token,
            "epoch": self.db.epoch,
            "migration": scenario,
        })

    def _epoch_abort(self, token: str) -> str:
        released = self._epoch_release(token)
        return json.dumps({"aborted": token if released else None,
                           "epoch": self.db.epoch})

    def _epoch_release(self, token: str) -> bool:
        with self._epoch_latch:
            if self._epoch_token != token:
                return False
            self._epoch_token = None
            if self._epoch_abort_timer is not None:
                self._epoch_abort_timer.cancel()
                self._epoch_abort_timer = None
            self._epoch_gate.set()
            return True

    def _epoch_auto_abort(self, token: str) -> None:
        """The coordinator never sent phase 2: reopen unilaterally (the
        router's next prepare starts a fresh round)."""
        self._epoch_release(token)

    def _run_migrate(self, arg: str) -> str:
        parts = arg.split()
        scenario = parts[0]
        delay = float(parts[1]) if len(parts) > 1 else 0.5
        handle = self._submit_scenario(scenario, background_delay=delay)
        return json.dumps({
            "migration": scenario,
            "complete": handle.is_complete,
            "epoch": self.db.epoch,
        })

    def _submit_scenario(self, scenario: str, background_delay: float = 0.5):
        """Submit a named TPC-C migration scenario on this shard's
        database — its own lazy engine, bitmaps/hashmaps, background
        pass, exactly as the embedded controller would."""
        from ..core import BackgroundConfig, MigrationController
        from ..tpcc.migrations import SCENARIOS

        spec = SCENARIOS.get(scenario)
        if spec is None:
            raise ProtocolError(
                f"unknown migration scenario {scenario!r} "
                f"(have: {', '.join(sorted(SCENARIOS))})"
            )
        if self._migration_controller is None:
            self._migration_controller = MigrationController(self.db)
        return self._migration_controller.submit(
            scenario, spec["ddl"],
            background=BackgroundConfig(delay=background_delay, chunk=64,
                                        interval=0.002),
            big_flip=spec["big_flip"],
        )

    def _format_progress(self) -> str:
        engines = self.db.migration_engines()
        if not engines:
            return "(no migration submitted)"
        lines: list[str] = []
        for engine in engines:
            progress = engine.progress()
            lines.append(
                f"migration: {progress.get('migration')}"
                f"  complete: {progress.get('complete')}"
            )
            fraction = progress.get("fraction")
            if fraction is not None:
                lines.append(
                    f"granules:  {progress.get('granules_migrated', 0)} "
                    f"({100.0 * fraction:.1f}%)"
                )
            lines.append(
                f"tuples:    {progress.get('tuples_migrated', 0)} "
                f"({progress.get('tuples_per_sec', 0.0):.0f} tuples/s now)"
            )
            eta = progress.get("eta_seconds")
            if progress.get("complete"):
                lines.append("eta:       done")
            elif eta is not None:
                lines.append(f"eta:       ~{eta:.1f}s at current rate")
            else:
                lines.append("eta:       unknown")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------
    def shutdown(self, drain_timeout: float | None = None) -> dict[str, int]:
        """Stop accepting, drain, then abort stragglers.

        Returns ``{"drained": n, "aborted": m}`` — how many connections
        retired cleanly (closed on their own, or at a statement
        boundary outside a transaction) versus force-killed at the
        deadline with their transactions rolled back.
        """
        if not self._running:
            return {"drained": 0, "aborted": 0}
        self._running = False
        self._draining.set()
        # A prepared flip can never commit once we are shutting down;
        # reopen the gate so gated workers drain instead of timing out.
        with self._epoch_latch:
            if self._epoch_abort_timer is not None:
                self._epoch_abort_timer.cancel()
                self._epoch_abort_timer = None
            self._epoch_token = None
        self._epoch_gate.set()
        # Census first: every connection alive at this instant either
        # drains (self-retires at a statement boundary, or is killed
        # while idle with no transaction) or is aborted at the
        # deadline.  Handlers start retiring the moment ``_draining``
        # is set, so counting any later under-reports ``drained``.
        with self._conns_latch:
            census = len(self._conns)
        deadline = time.monotonic() + (
            self.config.drain_timeout if drain_timeout is None else drain_timeout
        )
        self._ioq.append(("stop_accept",))
        self._wake()

        # Phases 1+2: idle connections outside a transaction have
        # nothing to drain — retire them immediately; keep sweeping as
        # in-flight work reaches a statement boundary (workers also
        # retire their own connection at drain points — see _process).
        shutdown_exc = ServerShutdownError("server is shutting down")
        while True:
            with self._conns_latch:
                remaining = list(self._conns.values())
            if not remaining:
                break
            for conn in remaining:
                with conn.lock:
                    idle = (
                        not conn.scheduled
                        and not conn.inbox
                        and not conn.retired
                        and not conn.session.in_transaction
                    )
                    if idle:
                        conn.retired = True
                if idle:
                    self._kill(conn, shutdown_exc)
                    self._do_retire(conn, "shutdown")
            if time.monotonic() >= deadline:
                break
            time.sleep(0.01)

        # Phase 3: the deadline passed — abort stragglers.
        with self._conns_latch:
            stragglers = list(self._conns.values())
        aborted = len(stragglers)
        for conn in stragglers:
            self._kill(
                conn,
                ServerShutdownError(
                    "server shutdown deadline reached; transaction aborted"
                ),
            )
        # Wait for the kills to unwind (a worker mid-statement retires
        # its connection when the statement returns).
        wait_deadline = time.monotonic() + 5.0
        while time.monotonic() < wait_deadline:
            with self._conns_latch:
                if not self._conns:
                    break
            time.sleep(0.01)

        # Stop the pool and the loop.
        with self._worker_latch:
            workers = list(self._worker_threads)
        for _ in workers:
            self._work_queue.put(None)
        for thread in workers:
            thread.join(timeout=5.0)
        self._io_running = False
        self._wake()
        if self._io_thread is not None:
            self._io_thread.join(timeout=5.0)
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:
                pass
        for waker in (self._waker_r, self._waker_w):
            if waker is not None:
                try:
                    waker.close()
                except OSError:
                    pass
        # Stop the history sampler only if start() created it — an
        # embedding application that attached monitoring first keeps
        # its sampler running after the server goes away.
        if self._monitor_owns_history:
            obs = self.db.obs
            history = getattr(obs, "history", None) if obs is not None else None
            if history is not None:
                history.stop()
            self._monitor_owns_history = False
        # Any connection cleaned up by its own handler before the
        # deadline counts as drained.
        drained = max(0, census - aborted)
        self._draining.clear()
        return {"drained": drained, "aborted": aborted}


def serve(
    db: Database, config: ServerConfig | None = None, faults: Any = None
) -> BullfrogServer:
    """Start a server and return it (non-blocking)."""
    return BullfrogServer(db, config, faults=faults).start()
