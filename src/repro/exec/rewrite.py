"""AST rewriting utilities used by the planner and by BullFrog.

The pieces here implement what the paper gets from PostgreSQL for free
(section 2.1): *view expansion* turns a query over a (migration) view
into a query over base tables, and *predicate analysis* — conjunct
splitting plus equivalence-class propagation through equality join
predicates — derives the per-old-table filters that bound the scope of
a lazy migration (e.g. ``FID = 'AA101'`` over the view becomes
``FLIGHTID = 'AA101'`` on both FLIGHTS and FLEWON).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..errors import ExecutionError
from ..sql import ast_nodes as ast

# ----------------------------------------------------------------------
# Generic expression transformation
# ----------------------------------------------------------------------


def transform_expr(expr: ast.Expr, fn: Callable[[ast.Expr], ast.Expr | None]) -> ast.Expr:
    """Bottom-up rewrite: ``fn`` may return a replacement for a node or
    None to keep the (already child-rewritten) node."""
    rewritten = _transform_children(expr, fn)
    replacement = fn(rewritten)
    return rewritten if replacement is None else replacement


def _transform_children(expr: ast.Expr, fn) -> ast.Expr:
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, transform_expr(expr.left, fn), transform_expr(expr.right, fn))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, transform_expr(expr.operand, fn))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(transform_expr(expr.operand, fn), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(
            transform_expr(expr.operand, fn),
            transform_expr(expr.low, fn),
            transform_expr(expr.high, fn),
            expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            transform_expr(expr.operand, fn),
            tuple(transform_expr(item, fn) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(transform_expr(arg, fn) for arg in expr.args),
            expr.distinct,
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(transform_expr(expr.operand, fn), expr.target)
    if isinstance(expr, ast.Extract):
        return ast.Extract(expr.field, transform_expr(expr.operand, fn))
    if isinstance(expr, ast.CaseExpr):
        operand = transform_expr(expr.operand, fn) if expr.operand is not None else None
        whens = tuple(
            (transform_expr(when, fn), transform_expr(then, fn))
            for when, then in expr.whens
        )
        default = transform_expr(expr.default, fn) if expr.default is not None else None
        return ast.CaseExpr(operand, whens, default)
    return expr


def bind_params(expr: ast.Expr, params: Sequence[Any]) -> ast.Expr:
    """Replace ``Param`` placeholders with literal values.  BullFrog does
    this before injecting client predicates into migration SELECTs."""

    def replace(node: ast.Expr) -> ast.Expr | None:
        if isinstance(node, ast.Param):
            if node.index >= len(params):
                raise ExecutionError(
                    f"parameter ${node.index + 1} has no bound value"
                )
            return ast.Literal(params[node.index])
        return None

    return transform_expr(expr, replace)


# ----------------------------------------------------------------------
# Conjunct handling
# ----------------------------------------------------------------------


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Iterable[ast.Expr]) -> ast.Expr | None:
    """AND together a list of conjuncts (None for an empty list)."""
    result: ast.Expr | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BinaryOp("AND", result, conjunct)
    return result


def referenced_bindings(expr: ast.Expr) -> set[str | None]:
    """The set of table bindings referenced by column refs in ``expr``.
    Unqualified references contribute ``None`` — the planner resolves
    those before using this."""
    return {
        node.table
        for node in ast.walk(expr)
        if isinstance(node, ast.ColumnRef)
    }


def has_params(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.Param) for node in ast.walk(expr))


def qualify_columns(
    expr: ast.Expr, resolver: Callable[[ast.ColumnRef], ast.ColumnRef]
) -> ast.Expr:
    """Rewrite every ColumnRef through ``resolver`` (used to attach table
    qualifiers to bare column names once the FROM scope is known)."""

    def replace(node: ast.Expr) -> ast.Expr | None:
        if isinstance(node, ast.ColumnRef):
            return resolver(node)
        return None

    return transform_expr(expr, replace)


# ----------------------------------------------------------------------
# Equivalence classes from equality predicates
# ----------------------------------------------------------------------


class EquivalenceClasses:
    """Union-find over qualified column keys, built from ``a.x = b.y``
    conjuncts.  Lets the planner (and BullFrog's predicate transfer)
    re-target a single-column predicate at every equivalent column."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def _find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self._find(parent)
        self._parent[key] = root
        return root

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def equivalent(self, a: str, b: str) -> bool:
        return self._find(a) == self._find(b)

    def members(self, key: str) -> set[str]:
        root = self._find(key)
        return {k for k in self._parent if self._find(k) == root}

    @staticmethod
    def from_conjuncts(conjuncts: Iterable[ast.Expr]) -> "EquivalenceClasses":
        classes = EquivalenceClasses()
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef)
            ):
                classes.union(conjunct.left.key(), conjunct.right.key())
        return classes


def derive_equivalent_predicates(
    conjuncts: list[ast.Expr],
    classes: EquivalenceClasses,
) -> list[ast.Expr]:
    """For each single-column-vs-constant conjunct, emit copies retargeted
    at every equivalent column (PostgreSQL's equivalence-class filter
    derivation, which the paper's example relies on: the view predicate
    lands on both join inputs)."""
    derived: list[ast.Expr] = []
    seen = {_expr_fingerprint(c) for c in conjuncts}
    for conjunct in conjuncts:
        column = _single_column_of(conjunct)
        if column is None:
            continue
        for member in classes.members(column.key()):
            if member == column.key():
                continue
            table, _, name = member.rpartition(".")
            replacement = ast.ColumnRef(name, table or None)
            rewritten = qualify_columns(
                conjunct,
                lambda ref, c=column, r=replacement: r if ref == c else ref,
            )
            fingerprint = _expr_fingerprint(rewritten)
            if fingerprint not in seen:
                seen.add(fingerprint)
                derived.append(rewritten)
    return derived


def _single_column_of(expr: ast.Expr) -> ast.ColumnRef | None:
    """If ``expr`` references exactly one column (possibly several times)
    and no other columns, return it; else None."""
    columns = {
        node for node in ast.walk(expr) if isinstance(node, ast.ColumnRef)
    }
    if len(columns) == 1:
        return next(iter(columns))
    return None


def _expr_fingerprint(expr: ast.Expr) -> str:
    from ..sql.render import render_expr

    return render_expr(expr)


# ----------------------------------------------------------------------
# View expansion
# ----------------------------------------------------------------------


def expand_views(select: ast.Select, view_lookup: Callable[[str], ast.Select | None]) -> ast.Select:
    """Replace every table reference that names a view with a derived
    table over the view's (recursively expanded) definition."""

    def expand_item(item: ast.FromItem) -> ast.FromItem:
        if isinstance(item, ast.TableRef):
            body = view_lookup(item.name)
            if body is None:
                return item
            expanded_body = expand_views(body, view_lookup)
            return ast.SubquerySource(expanded_body, item.binding)
        if isinstance(item, ast.SubquerySource):
            return ast.SubquerySource(expand_views(item.query, view_lookup), item.alias)
        if isinstance(item, ast.Join):
            return ast.Join(
                item.kind,
                expand_item(item.left),
                expand_item(item.right),
                item.condition,
            )
        return item

    return ast.Select(
        items=select.items,
        from_items=tuple(expand_item(item) for item in select.from_items),
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )
