"""Catalog: schemas, columns, constraints, and the runtime name registry."""

from .column import Column
from .constraints import Check, Constraint, ForeignKey, PrimaryKey, Unique
from .schema import TableSchema
from .catalog import Catalog, Table, View

__all__ = [
    "Column",
    "Check",
    "Constraint",
    "ForeignKey",
    "PrimaryKey",
    "Unique",
    "TableSchema",
    "Catalog",
    "Table",
    "View",
]
