"""The observability bundle attached to a :class:`~repro.db.Database`.

One object owns the metric registry and the trace log, plus pre-bound
emission helpers for the migration-lifecycle points.  The emission
sites are exactly the eight fault seams of :mod:`repro.core.faults`
(``FAULT_POINTS``) — the hot paths already branch there, so attaching
observability adds **one** guarded call per seam
(``obs is not None`` → ``obs.emit(point, ...)``), which bumps the
point's counter *and* appends a trace event in a single dispatch, not
two separate guards for metrics and tracing.

Zero-cost-when-detached contract (same as fault injection): every
owner holds ``obs = None`` by default and guards with a plain
``is not None``; ``benchmarks/bench_obs_overhead.py`` holds the
disabled cost to <2% and the enabled-metrics cost to <5%.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any

from ..sql import ast_nodes as _ast
from .registry import DEFAULT_LATENCY_BUCKETS, MetricRegistry
from .trace import TraceEvent, TraceLog
from .tracectx import WAIT_CLASSES, current as _trace_current

# One counter per migration-lifecycle point; keys mirror
# repro.core.faults.FAULT_POINTS so the seams double as metric sites.
POINT_COUNTERS: dict[str, tuple[str, str]] = {
    "migrate.before_claim": (
        "bullfrog_claim_rounds_total",
        "claim rounds entered by the per-transaction migration loop",
    ),
    "migrate.after_produce": (
        "bullfrog_produce_batches_total",
        "migration produce batches (output rows materialized, pre-commit)",
    ),
    "migrate.before_mark": (
        "bullfrog_mark_rounds_total",
        "tracker mark-migrated rounds (post-commit)",
    ),
    "migrate.after_commit": (
        "bullfrog_migrate_commits_total",
        "committed migration transactions",
    ),
    "background.pass": (
        "bullfrog_background_passes_total",
        "background migrator per-unit passes",
    ),
    "txn.commit": ("repro_txn_commits_total", "transaction commits"),
    "txn.abort": ("repro_txn_aborts_total", "transaction aborts"),
    "wal.flush": ("repro_wal_batches_total", "WAL redo batches appended"),
    "net.accept": (
        "repro_net_accept_rounds_total",
        "bullfrogd accept-loop rounds (one per inbound connection, "
        "pre-admission)",
    ),
    "net.read": (
        "repro_net_frames_read_total",
        "protocol frames read from clients by bullfrogd",
    ),
    "net.write": (
        "repro_net_frames_written_total",
        "protocol frames written to clients by bullfrogd",
    ),
}


def _noop(amount: float = 1) -> None:
    pass


# Span names precomputed by statement kind: the f-string was a
# measurable slice of the per-statement tracing cost.
_STMT_SPAN_NAMES = {
    kind: f"stmt.{kind}" for kind in ("select", "insert", "update", "delete", "ddl")
}

# Statements stalled this long (or that did real migration work) get a
# ``migrate.intercept`` span; cheaper no-op interceptor passes stay
# span-free and their time classifies as cpu.
_INTERCEPT_SPAN_FLOOR_S = 0.00025

# Staging entries folded into totals when the deque grows past this.
_WAIT_FOLD_THRESHOLD = 4096


class Observability:
    """Registry + trace log + pre-bound lifecycle instruments.

    ``metrics=False`` / ``tracing=False`` keep the object attachable
    (the guards still pass) while the corresponding emissions early-out;
    the overhead benchmark uses this to price the seams themselves.
    """

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        trace: TraceLog | None = None,
        metrics: bool = True,
        tracing: bool = True,
        trace_capacity: int = 65536,
        sample_statements: int = 16,
        sample_traces: int = 64,
        slow_query_threshold: float | None = None,
        slow_query_capacity: int = 256,
        slow_query_log_path: str | None = None,
        slow_query_log_max_bytes: int = 16 * 1024 * 1024,
    ) -> None:
        if sample_statements < 1 or sample_statements & (sample_statements - 1):
            raise ValueError("sample_statements must be a power of two")
        if sample_traces < 1 or sample_traces & (sample_traces - 1):
            raise ValueError("sample_traces must be a power of two")
        if sample_traces < sample_statements:
            # Powers of two nest: every 1-in-sample_traces statement is
            # then also latency-sampled, so a traced root always has
            # its histogram observation.
            raise ValueError("sample_traces must be >= sample_statements")
        if slow_query_capacity <= 0:
            raise ValueError("slow_query_capacity must be positive")
        if slow_query_threshold is not None and slow_query_threshold < 0:
            raise ValueError("slow_query_threshold must be non-negative")
        self.registry = registry if registry is not None else MetricRegistry()
        self.trace = trace if trace is not None else TraceLog(trace_capacity)
        self.metrics_enabled = metrics
        self.tracing_enabled = tracing
        # The slow-query log needs the same per-statement machinery as
        # tracing (wait breakdown, trace ids), so either turns on the
        # "every statement is fully observed" path.
        self.slow_query_threshold = slow_query_threshold
        self.statement_tracing = tracing or slow_query_threshold is not None
        # Statement *counts* are exact; statement *latency* is observed
        # for a deterministic 1-in-N sample (the first statement and
        # every Nth after it).  Two clock reads plus a histogram update
        # per statement is the single largest instrumentation cost on
        # the no-op migration hot loop, and a 1-in-16 sample keeps the
        # latency distribution while pricing 15 of 16 statements at one
        # counter bump.  Tracing head-samples *root* statement spans on
        # its own (coarser) 1-in-``sample_traces`` period, as
        # production tracers do: a statement arriving under a
        # propagated trace context — every networked request with
        # tracing negotiated — is always fully traced, and an untraced
        # embedded statement starts a full root trace 1-in-64 by
        # default.  The two-tier split is what keeps the
        # enabled-tracing overhead inside the <5% budget on the no-op
        # hot loop: the full span/context machinery costs ~10x the
        # histogram observation, so it gets ~4x the sampling period.
        # A slow-query threshold forces both periods to 1: a slow
        # statement must never dodge its record — or arrive in it
        # without its wait breakdown — by being unsampled.
        self.sample_statements = (
            1 if slow_query_threshold is not None else sample_statements
        )
        self.sample_traces = (
            1 if slow_query_threshold is not None else sample_traces
        )
        # Wait-event accumulator: emission is a GIL-atomic deque append
        # of ``(class, seconds)``; totals are folded under a latch when
        # the staging deque grows past a threshold or a snapshot is
        # taken.  This keeps the contended-path cost (lock waits, WAL
        # appends from every worker) to one append, no lock.
        self._wait_staging: deque[tuple[str, float]] = deque()
        self._wait_totals: dict[str, list[float]] = {
            cls: [0, 0.0] for cls in WAIT_CLASSES
        }
        self._wait_latch = threading.Lock()
        # Slow-query ring + optional JSONL sink (opened lazily so an
        # Observability() constructed for one statement never touches
        # the filesystem).  The sink is size-capped: past half the
        # budget it rotates to ``<path>.1`` (replacing the previous
        # rotation), so path + path.1 together never exceed
        # ``slow_query_log_max_bytes`` and a week-long soak cannot fill
        # the disk.
        if slow_query_log_max_bytes < 4096:
            raise ValueError("slow_query_log_max_bytes must be at least 4096")
        self.slow_query_log_path = slow_query_log_path
        self.slow_query_log_max_bytes = slow_query_log_max_bytes
        self._slow_queries: deque[dict[str, Any]] = deque(maxlen=slow_query_capacity)
        self._slow_latch = threading.Lock()
        self._slow_sink: Any = None
        # Monitoring attachments (PR 9): the time-series sampler, the
        # health rule engine, and the flight recorder.  All None until
        # attach_history()/attach_monitoring() — a bare Observability
        # stays a passive bundle with no threads.
        self.history: Any = None
        self.health: Any = None
        self.flight: Any = None
        # Hot seams check this one attribute after their `is not None`
        # guard: an attached-but-fully-disabled bundle then costs a
        # branch per seam instead of a full emit dispatch.
        self.active = bool(metrics or tracing)
        # Pre-bound *cells* (not families): emission is a dict lookup +
        # one locked add — no registry traversal, no family delegation.
        self._point_counters: dict[str, Any] = {}
        if metrics:
            for point, (name, help_text) in POINT_COUNTERS.items():
                self._point_counters[point] = self.registry.counter(
                    name, help_text
                ).cell()
            self.statement_latency = self.registry.histogram(
                "repro_statement_seconds",
                "end-to-end statement latency (includes lazy-migration work "
                "done by the interceptor)",
                labelnames=("stmt",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self.migrate_wip_latency = self.registry.histogram(
                "bullfrog_migrate_wip_seconds",
                "duration of one migration transaction (claim batch -> "
                "produce -> commit -> mark)",
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self.wal_batch_records = self.registry.histogram(
                "repro_wal_batch_records",
                "redo records per WAL append batch",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
            )
            self.rows_written = self.registry.counter(
                "repro_rows_written_total",
                "rows written by DML (post-constraint-check)",
                labelnames=("op",),
            )
            self._rows_cells = {
                op: self.rows_written.labels(op=op)
                for op in ("insert", "update", "delete")
            }
            self.statements_total = self.registry.counter(
                "repro_statements_total",
                "client statements executed (exact, never sampled)",
                labelnames=("stmt",),
            )
            self._stmt_cells = {
                kind: self.statement_latency.labels(stmt=kind)
                for kind in ("select", "insert", "update", "delete", "ddl")
            }
            self._stmt_observes = {
                kind: cell.observe for kind, cell in self._stmt_cells.items()
            }
            self._stmt_incs = {
                kind: self.statements_total.labels(stmt=kind).inc1
                for kind in ("select", "insert", "update", "delete", "ddl")
            }
            # Keyed by AST class so the executor seam dispatches with
            # one ``type(stmt)`` + one dict probe; anything not DML
            # (DDL included) falls back to the ``ddl`` series.
            self._stmt_incs_by_type = {
                _ast.Select: self._stmt_incs["select"],
                _ast.Insert: self._stmt_incs["insert"],
                _ast.Update: self._stmt_incs["update"],
                _ast.Delete: self._stmt_incs["delete"],
            }
            self.lock_wait_latency = self.registry.histogram(
                "repro_lock_wait_seconds",
                "time spent blocked on lock acquisition (contended path "
                "only; uncontended acquires are never observed)",
                labelnames=("resource",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._lock_wait_cells = {
                cls: self.lock_wait_latency.labels(resource=cls).observe
                for cls in ("table", "tuple", "other")
            }
            self.deadlocks_total = self.registry.counter(
                "repro_deadlock_aborts_total",
                "lock acquisitions aborted by deadlock handling "
                "(DETECT victim or WAIT_DIE death)",
            ).cell()
            self.lock_timeouts_total = self.registry.counter(
                "repro_lock_timeouts_total",
                "lock acquisitions aborted by the lock-wait timeout",
            ).cell()
            self.serialization_failures_total = self.registry.counter(
                "repro_serialization_failures_total",
                "snapshot-isolation first-updater-wins aborts "
                "(SQLSTATE 40001)",
            ).cell()
            self._wip_cell = self.migrate_wip_latency.cell()
            self._wal_cells: tuple[Any, Any] | None = (
                self._point_counters["wal.flush"],
                self.wal_batch_records.cell(),
            )
            # Bound-method fast paths for the two per-statement-rate
            # counters: on the no-op hot loop even one spare call layer
            # per seam is measurable, so the seams call the cell's
            # atomic unit-increment directly when tracing is off.
            self.inc_claim_round = self._point_counters["migrate.before_claim"].inc1
            self.inc_txn_commit = self._point_counters["txn.commit"].inc1
            if not self.statement_tracing:
                # Metrics-only statement hooks, specialized at attach
                # time: no tracing branch, no method-dispatch glue —
                # the executor calls straight into the counter and
                # histogram cells.  The sampling coin is a one-slot
                # list cycling 0..255 — every value it ever holds is an
                # interned small int, so the per-statement cost is one
                # allocation-free append (the count), one subscript
                # read, one masked store.  A racing second worker can
                # only jitter the sampling *cadence* (the counts stay
                # exact — they live in the deques); and the sampled
                # slow path doubles as the compaction tick that keeps
                # the hot cells' inc1 queues bounded in a process
                # nobody ever scrapes.
                incs_by_type_get = self._stmt_incs_by_type.get
                ddl_inc = self._stmt_incs["ddl"]
                observes_get = self._stmt_observes.get
                fallback = self.statement_latency
                mask = self.sample_statements - 1
                coin = [0]
                hot_cells = tuple(
                    {
                        self._point_counters["migrate.before_claim"],
                        self._point_counters["txn.commit"],
                        *(
                            self.statements_total.labels(stmt=kind)
                            for kind in ("select", "insert", "update", "delete", "ddl")
                        ),
                    }
                )

                def _statement_begin(
                    stmt_type: type, _pc=time.perf_counter
                ) -> float:
                    incs_by_type_get(stmt_type, ddl_inc)()
                    n = coin[0]
                    coin[0] = (n + 1) & 255
                    if n & mask:
                        return 0.0
                    if not n:
                        for cell in hot_cells:
                            cell.maybe_compact()
                    return _pc()

                def _statement_done(
                    kind: str, start_s: float, _pc=time.perf_counter
                ) -> None:
                    observe = observes_get(kind)
                    if observe is not None:
                        observe(_pc() - start_s)
                    else:
                        fallback.labels(stmt=kind).observe(_pc() - start_s)

                self.statement_begin = _statement_begin
                self.statement_done = _statement_done
        else:
            self.statement_latency = None
            self.statements_total = None
            self.migrate_wip_latency = None
            self.wal_batch_records = None
            self.rows_written = None
            self.lock_wait_latency = None
            self._lock_wait_cells = {}
            self.deadlocks_total = None
            self.lock_timeouts_total = None
            self.serialization_failures_total = None
            self._rows_cells = {}
            self._stmt_cells = {}
            self._stmt_observes = {}
            self._stmt_incs = {}
            self._stmt_incs_by_type = {}
            self._wip_cell = None
            self._wal_cells = None
            self.inc_claim_round = _noop
            self.inc_txn_commit = _noop
        if self.statement_tracing:
            # Statement-tracing hooks, specialized at attach time like
            # the metrics-only pair above: every cell, dict probe, and
            # the trace ring itself become closure locals.  Head
            # sampling rides the same one-slot cyclic coin the metrics
            # pair uses (see its comment), answered as a *signed* clock
            # reading: ``0.0`` for an unsampled statement ("count it,
            # but unless a propagated trace context says otherwise,
            # skip all end work" — the exact fast path of the
            # metrics-only pair), a *negative* timestamp for a
            # latency-sampled-but-untraced one (histogram observation
            # only), and a positive timestamp for a trace-sampled root
            # (full span/context machinery).  The caller
            # (``Session.execute_statement``) always honors an active
            # propagated context regardless of the coin, re-reading the
            # clock itself for that case.
            incs_by_type_get = self._stmt_incs_by_type.get
            ddl_inc = self._stmt_incs["ddl"] if self._stmt_incs else _noop
            observes_get = self._stmt_observes.get
            fallback = self.statement_latency
            mask = self.sample_statements - 1
            tmask = self.sample_traces - 1
            cycle_mask = max(self.sample_traces, 256) - 1
            coin = [0]
            if metrics:
                hot_cells = tuple(
                    {
                        self._point_counters["migrate.before_claim"],
                        self._point_counters["txn.commit"],
                        *(
                            self.statements_total.labels(stmt=kind)
                            for kind in ("select", "insert", "update", "delete", "ddl")
                        ),
                    }
                )
            else:
                hot_cells = ()
            staging = self._wait_staging
            fold = self._fold_waits
            trace = self.trace
            tappend = trace._append
            epoch = trace._epoch
            tracing_on = tracing
            threshold = slow_query_threshold
            record_slow = self._record_slow

            def _statement_begin(stmt_type: type, _pc=time.perf_counter) -> float:
                incs_by_type_get(stmt_type, ddl_inc)()
                n = coin[0]
                coin[0] = (n + 1) & cycle_mask
                if n & mask:
                    return 0.0
                if n & tmask:
                    return -_pc()
                if not n:
                    for cell in hot_cells:
                        cell.maybe_compact()
                return _pc()

            def _statement_done(
                kind: str,
                start_s: float,
                ctx: Any = None,
                sql_text: str | None = None,
                isolation: str | None = None,
                _pc=time.perf_counter,
                _ident=threading.get_ident,
                _event=TraceEvent,
                _names_get=_STMT_SPAN_NAMES.get,
            ) -> None:
                now = _pc()
                seconds = now - start_s
                observe = observes_get(kind)
                if observe is not None:
                    observe(seconds)
                elif fallback is not None:
                    fallback.labels(stmt=kind).observe(seconds)
                cpu = seconds
                if ctx is not None:
                    waits = ctx.waits
                    if waits:
                        cpu -= (
                            waits.get("lock", 0.0)
                            + waits.get("migration", 0.0)
                            + waits.get("wal", 0.0)
                        )
                        if cpu < 0.0:
                            cpu = 0.0
                    staging.append(("cpu", cpu))
                    if len(staging) >= _WAIT_FOLD_THRESHOLD:
                        fold()
                if tracing_on and ctx is not None:
                    # Span emission tracks the trace coin, not the
                    # latency coin: a latency-sampled-but-untraced
                    # statement (ctx None) gets its histogram
                    # observation above and no orphan span here.
                    dur_us = seconds * 1e6
                    end_us = (now - epoch) * 1e6
                    args: dict[str, Any] = {
                        "trace": ctx.trace_id,
                        "span": ctx.span_id,
                    }
                    parent = ctx.parent_id
                    if parent is not None:
                        args["parent"] = parent
                    tappend(
                        _event(
                            _names_get(kind) or f"stmt.{kind}",
                            "exec",
                            "X",
                            end_us - dur_us,
                            dur_us,
                            _ident(),
                            args,
                        )
                    )
                if threshold is not None and seconds >= threshold:
                    record_slow(kind, seconds, cpu, ctx, sql_text, isolation)

            self.statement_begin = _statement_begin
            self.statement_done = _statement_done

    # ------------------------------------------------------------------
    # Lifecycle-point emission (the fault seams)
    # ------------------------------------------------------------------
    def emit(self, point: str, **args: Any) -> None:
        """One guarded call per seam: counter bump + instant trace event.
        When a trace context is active, the instant is tagged with its
        trace id so lifecycle points land inside the request tree."""
        counter = self._point_counters.get(point)
        if counter is not None:
            counter.inc()
        if self.tracing_enabled:
            ctx = _trace_current()
            if ctx is not None:
                args["trace"] = ctx.trace_id
                args["parent"] = ctx.span_id
            self.trace.instant(point, cat="lifecycle", args=args or None)

    def count(self, point: str) -> None:
        """Metrics-only fast path for a lifecycle point: ``emit(point)``
        minus the kwargs collection (which costs more than the counter
        bump itself).  Hot seams take it when tracing is off."""
        cell = self._point_counters.get(point)
        if cell is not None:
            cell.inc()

    @staticmethod
    def in_trace() -> bool:
        """True when a statement/request trace context is active on
        this thread of control — the seams (WAL) that cannot import
        :mod:`.tracectx` without a cycle ask through here."""
        return _trace_current() is not None

    def trace_point(self, point: str, **args: Any) -> None:
        """Instant-only emission (no counter — the caller already
        counted), trace-tagged.  For seams whose counter must stay
        exact while the instant is emitted selectively."""
        if self.tracing_enabled:
            ctx = _trace_current()
            if ctx is not None:
                args["trace"] = ctx.trace_id
                args["parent"] = ctx.span_id
            self.trace.instant(point, cat="lifecycle", args=args or None)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span_start(self) -> float:
        """Start-of-span timestamp; pair with :meth:`span_end`.  Cheaper
        than a context manager on hot paths."""
        return self.trace.now_us() if self.tracing_enabled else time.perf_counter() * 1e6

    def span_end(
        self, name: str, start_us: float, cat: str = "", **args: Any
    ) -> float:
        """Record the span (if tracing) and return its duration in
        seconds (for feeding a histogram).  Trace-tagged when a context
        is active."""
        if self.tracing_enabled:
            end = self.trace.now_us()
            ctx = _trace_current()
            if ctx is not None:
                args["trace"] = ctx.trace_id
                args["parent"] = ctx.span_id
            self.trace.complete(name, start_us, cat=cat, args=args or None, end_us=end)
            return (end - start_us) / 1e6
        return time.perf_counter() - start_us / 1e6

    def observe_wip(self, start_us: float, **args: Any) -> None:
        """End of one migration transaction: the ``migrate.wip`` span
        (if tracing) and its duration histogram, one guarded call.

        When a trace context is active this migration ran
        *synchronously inside a foreground statement* (the interceptor
        pulled it in), so its full duration is recorded as a
        ``migration`` wait — this is *the* leaf site for the migration
        wait class, which is why the view's migration total reconciles
        exactly with the trace's foreground ``migrate.wip`` span
        durations.  Background-migrator calls carry no context and are
        not waits."""
        ctx = _trace_current()
        if self.tracing_enabled:
            end = self.trace.now_us()
            seconds = (end - start_us) / 1e6
            if ctx is not None:
                args["trace"] = ctx.trace_id
                args["parent"] = ctx.span_id
                args["wait"] = "migration"
            self.trace.complete(
                "migrate.wip", start_us, cat="migration",
                args=args or None, end_us=end,
            )
        else:
            seconds = time.perf_counter() - start_us * 1e-6
        if ctx is not None:
            ctx.note("wip", 1)
            self.record_wait("migration", seconds, ctx)
        cell = self._wip_cell
        if cell is not None:
            cell.observe(seconds)

    def wal_flush(self, txn_id: int, records: int) -> None:
        """The ``wal.flush`` seam: batch counter + records-per-batch
        histogram + trace instant behind the WAL's one guard."""
        cells = self._wal_cells
        if cells is not None:
            cells[0].inc()
            cells[1].observe(records)
        if self.tracing_enabled:
            self.trace.instant(
                "wal.flush",
                cat="lifecycle",
                args={"txn_id": txn_id, "records": records},
            )

    # ------------------------------------------------------------------
    # Per-statement executor instrumentation
    # ------------------------------------------------------------------
    def statement_begin(self, stmt_type: type) -> float:
        """Start-of-statement hook: exact statement count, then the
        start timestamp — or ``0.0`` when this statement's latency is
        not sampled, telling the caller to skip :meth:`statement_done`.
        This general (non-specialized) path always samples; the
        attach-time closures installed by ``__init__`` shadow it on
        every live configuration."""
        incs = self._stmt_incs_by_type
        if incs:
            incs.get(stmt_type, self._stmt_incs["ddl"])()
        return time.perf_counter()

    def statement_done(
        self,
        kind: str,
        start_s: float,
        ctx: Any = None,
        sql_text: str | None = None,
        isolation: str | None = None,
        _pc=time.perf_counter,
        _ident=threading.get_ident,
        _names=_STMT_SPAN_NAMES,
    ) -> None:
        """End-of-statement hook: latency histogram, ``stmt.<kind>``
        trace span (tagged with the statement's trace ids), the derived
        ``cpu`` wait event, and the slow-query check — all off one
        clock read.  ``ctx`` is the statement's
        :class:`~repro.obs.tracectx.TraceContext` when statement
        tracing is on; its shared wait accumulator holds every wait the
        statement incurred below this frame."""
        now = _pc()
        seconds = now - start_s
        observe = self._stmt_observes.get(kind)
        if observe is not None:
            observe(seconds)
        elif self.statement_latency is not None:
            self.statement_latency.labels(stmt=kind).observe(seconds)
        cpu = seconds
        if ctx is not None:
            waits = ctx.waits
            if waits:
                # net_queue/pool precede execution (they accrue on the
                # shared accumulator before the statement starts), so
                # only in-statement waits are subtracted from cpu.
                cpu -= (
                    waits.get("lock", 0.0)
                    + waits.get("migration", 0.0)
                    + waits.get("wal", 0.0)
                )
                if cpu < 0.0:
                    cpu = 0.0
            staging = self._wait_staging
            staging.append(("cpu", cpu))
            if len(staging) >= _WAIT_FOLD_THRESHOLD:
                self._fold_waits()
        if self.tracing_enabled and ctx is not None:
            trace = self.trace
            dur_us = seconds * 1e6
            end_us = (now - trace._epoch) * 1e6
            args: dict[str, Any] = {
                "trace": ctx.trace_id,
                "span": ctx.span_id,
            }
            if ctx.parent_id is not None:
                args["parent"] = ctx.parent_id
            trace._append(
                TraceEvent(
                    _names.get(kind) or f"stmt.{kind}",
                    "exec",
                    "X",
                    end_us - dur_us,
                    dur_us,
                    _ident(),
                    args,
                )
            )
        threshold = self.slow_query_threshold
        if threshold is not None and seconds >= threshold:
            self._record_slow(kind, seconds, cpu, ctx, sql_text, isolation)

    # ------------------------------------------------------------------
    # Lock-wait profiling (called by LockManager on the contended path)
    # ------------------------------------------------------------------
    def observe_lock_wait(
        self, cls: str, seconds: float, blockers: tuple[int, ...] = ()
    ) -> None:
        """Contended-path lock wait: histogram, the ``lock`` wait event
        (when a statement context is active), and a ``lock.wait`` span
        naming the blocking transaction ids."""
        observe = self._lock_wait_cells.get(cls)
        if observe is not None:
            observe(seconds)
        ctx = _trace_current()
        if ctx is not None:
            self.record_wait("lock", seconds, ctx)
        if self.tracing_enabled:
            end_us = self.trace.now_us()
            args: dict[str, Any] = {"resource": cls}
            if blockers:
                args["blockers"] = list(blockers)
            if ctx is not None:
                args["trace"] = ctx.trace_id
                args["parent"] = ctx.span_id
                args["wait"] = "lock"
            self.trace.complete(
                "lock.wait", end_us - seconds * 1e6, cat="txn",
                args=args, end_us=end_us,
            )

    def count_deadlock(self) -> None:
        cell = self.deadlocks_total
        if cell is not None:
            cell.inc()

    def count_lock_timeout(self) -> None:
        cell = self.lock_timeouts_total
        if cell is not None:
            cell.inc()

    def count_serialization_failure(self) -> None:
        cell = self.serialization_failures_total
        if cell is not None:
            cell.inc()

    def add_rows(self, op: str, count: int) -> None:
        """Row-count accounting from the executor write path; pre-bound
        label cells so the cost is one dict lookup + one locked add.
        Inside a traced statement the count also lands on the context's
        notes, so the slow-query record reports rows touched per op."""
        cell = self._rows_cells.get(op)
        if cell is not None and count:
            cell.inc(count)
        if count and self.statement_tracing:
            ctx = _trace_current()
            if ctx is not None:
                ctx.note("rows_" + op, count)

    # ------------------------------------------------------------------
    # Wait-event classifier
    # ------------------------------------------------------------------
    def record_wait(self, wait_class: str, seconds: float, ctx: Any = None) -> None:
        """Attribute ``seconds`` of a statement's life to a wait class.

        Called from the leaf sites that already know the duration (lock
        waits, synchronous migration, WAL append, inbox queueing, pool
        acquisition); ``cpu`` is derived per statement as the
        remainder.  The hot cost is one GIL-atomic deque append; totals
        fold lazily."""
        if ctx is not None:
            ctx.add_wait(wait_class, seconds)
        staging = self._wait_staging
        staging.append((wait_class, seconds))
        if len(staging) >= _WAIT_FOLD_THRESHOLD:
            self._fold_waits()

    def _fold_waits(self) -> None:
        with self._wait_latch:
            staging = self._wait_staging
            totals = self._wait_totals
            while staging:
                try:
                    wait_class, seconds = staging.popleft()
                except IndexError:  # pragma: no cover - racing folder
                    break
                bucket = totals.get(wait_class)
                if bucket is None:
                    bucket = totals[wait_class] = [0, 0.0]
                bucket[0] += 1
                bucket[1] += seconds

    def wait_events_snapshot(self) -> dict[str, tuple[int, float]]:
        """``{wait_class: (count, total_seconds)}`` for every class
        (zero rows included, like ``pg_stat``)."""
        self._fold_waits()
        with self._wait_latch:
            return {
                cls: (bucket[0], bucket[1])
                for cls, bucket in self._wait_totals.items()
            }

    # ------------------------------------------------------------------
    # Slow-query log
    # ------------------------------------------------------------------
    def _record_slow(
        self,
        kind: str,
        seconds: float,
        cpu: float,
        ctx: Any,
        sql_text: str | None,
        isolation: str | None,
    ) -> None:
        waits = (ctx.waits or {}) if ctx is not None else {}
        notes = (ctx.notes or {}) if ctx is not None else {}
        record: dict[str, Any] = {
            "ts": time.time(),
            "stmt": kind,
            "sql": sql_text,
            "isolation": isolation,
            "duration_ms": seconds * 1e3,
            "cpu_ms": cpu * 1e3,
            "trace_id": ctx.trace_id if ctx is not None else None,
            "span_id": ctx.span_id if ctx is not None else None,
            "parent_id": ctx.parent_id if ctx is not None else None,
            "waits_ms": {
                cls: value * 1e3 for cls, value in sorted(waits.items())
            },
            "migration": {
                "granules": notes.get("granules", 0),
                "tuples": notes.get("tuples", 0),
            },
            "rows": {
                key[5:]: value
                for key, value in sorted(notes.items())
                if key.startswith("rows_")
            },
        }
        with self._slow_latch:
            self._slow_queries.append(record)
            path = self.slow_query_log_path
            if path is not None:
                sink = self._slow_sink
                if sink is None:
                    sink = self._slow_sink = open(path, "a", encoding="utf-8")
                sink.write(json.dumps(record, default=str) + "\n")
                sink.flush()
                # Size-capped rotation: the live file holds at most
                # half the budget; one predecessor (``<path>.1``) holds
                # the other half, replaced on each rotation — total
                # on-disk ≤ slow_query_log_max_bytes, and the most
                # recent half-budget of records is always intact.
                if sink.tell() >= self.slow_query_log_max_bytes // 2:
                    sink.close()
                    os.replace(path, path + ".1")
                    self._slow_sink = open(path, "a", encoding="utf-8")

    def slow_queries(self) -> list[dict[str, Any]]:
        """Newest-last snapshot of the in-memory slow-query ring."""
        with self._slow_latch:
            return list(self._slow_queries)

    # ------------------------------------------------------------------
    # Monitoring attachments (history sampler, health rules, recorder)
    # ------------------------------------------------------------------
    def attach_history(
        self,
        interval: float = 0.25,
        capacity: int = 240,
        start: bool = True,
    ) -> Any:
        """Create (or return the existing) metrics-history sampler over
        this bundle.  Imported lazily so a bundle that never monitors
        never loads the module."""
        if self.history is None:
            from .history import MetricsHistory

            self.history = MetricsHistory(
                self, interval=interval, capacity=capacity
            )
        if start:
            self.history.start()
        return self.history

    def attach_monitoring(
        self,
        db: Any = None,
        *,
        interval: float = 0.25,
        capacity: int = 240,
        rules: Any = None,
        incident_dir: str | None = None,
        min_dump_interval: float = 30.0,
        max_incidents: int = 8,
        max_incident_bytes: int = 64 * 1024 * 1024,
        start: bool = True,
    ) -> tuple[Any, Any, Any]:
        """The full monitoring stack in one call: history sampler +
        health engine (evaluated on the sampling cadence) + flight
        recorder wired to breaches.  Returns ``(history, health,
        flight)``; idempotent per component, so a server can add its
        own rules after an embedded shell already attached."""
        history = self.attach_history(
            interval=interval, capacity=capacity, start=start
        )
        if self.health is None:
            from .health import HealthEngine

            self.health = HealthEngine(history, rules, obs=self).attach()
        if self.flight is None:
            from .flightrec import FlightRecorder

            self.flight = FlightRecorder(
                self,
                db=db,
                history=history,
                health=self.health,
                directory=incident_dir
                if incident_dir is not None
                else os.path.join("results", "incidents"),
                min_interval=min_dump_interval,
                max_incidents=max_incidents,
                max_bytes=max_incident_bytes,
            )
            self.health.on_breach(self.flight.on_breach)
        elif db is not None and self.flight.db is None:
            self.flight.db = db
        return history, self.health, self.flight

    def close(self) -> None:
        """Stop the history sampler (if attached) and flush/close the
        slow-query JSONL sink (idempotent)."""
        history = self.history
        if history is not None:
            history.stop()
        with self._slow_latch:
            if self._slow_sink is not None:
                self._slow_sink.close()
                self._slow_sink = None

    # ------------------------------------------------------------------
    # WAL append span (tracing path; metrics-only keeps wal_flush)
    # ------------------------------------------------------------------
    def wal_append(
        self,
        start_s: float,
        txn_id: int,
        records: int,
        _pc=time.perf_counter,
        _ident=threading.get_ident,
    ) -> None:
        """End of one redo-batch append: batch metrics, the ``wal``
        wait event, and a ``wal.append`` span.  The WAL calls this
        *after* the append (so a crashed append records nothing), only
        on the statement-tracing path — metrics-only mode keeps the
        pre-append :meth:`wal_flush` instant."""
        now = _pc()
        seconds = now - start_s
        cells = self._wal_cells
        if cells is not None:
            cells[0].inc()
            cells[1].observe(records)
        ctx = _trace_current()
        if ctx is not None:
            self.record_wait("wal", seconds, ctx)
        if self.tracing_enabled:
            trace = self.trace
            args: dict[str, Any] = {"txn_id": txn_id, "records": records}
            if ctx is not None:
                args["trace"] = ctx.trace_id
                args["parent"] = ctx.span_id
                args["wait"] = "wal"
            dur_us = seconds * 1e6
            end_us = (now - trace._epoch) * 1e6
            trace._append(
                TraceEvent(
                    "wal.append", "txn", "X", end_us - dur_us, dur_us,
                    _ident(), args,
                )
            )

    # ------------------------------------------------------------------
    # Lazy-migration interceptor span (statement-tracing path)
    # ------------------------------------------------------------------
    def intercept_begin(self, _pc=time.perf_counter) -> float:
        return _pc()

    def intercept_done(
        self,
        start_s: float,
        ctx: Any,
        _pc=time.perf_counter,
        _ident=threading.get_ident,
    ) -> None:
        """End of the BullFrog statement interceptor.  A span is worth
        its cost only when the interceptor *did* something — pulled a
        migration in synchronously (``wip`` note) or stalled past the
        floor (e.g. waiting out another transaction's claim).  The
        overwhelmingly common no-op claim check stays span-free and its
        nanoseconds classify as cpu."""
        now = _pc()
        seconds = now - start_s
        if seconds < _INTERCEPT_SPAN_FLOOR_S:
            notes = ctx.notes if ctx is not None else None
            if notes is None or "wip" not in notes:
                return
        if self.tracing_enabled:
            trace = self.trace
            args: dict[str, Any] | None = None
            if ctx is not None:
                args = {"trace": ctx.trace_id, "parent": ctx.span_id}
            dur_us = seconds * 1e6
            end_us = (now - trace._epoch) * 1e6
            trace._append(
                TraceEvent(
                    "migrate.intercept", "migration", "X",
                    end_us - dur_us, dur_us, _ident(), args,
                )
            )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot()


__all__ = ["Observability", "POINT_COUNTERS"]
