"""The bullfrogd wire protocol: length-prefixed binary frames.

Every message on the wire is one **frame**::

    +------+----------------+---------------------+
    | type | payload length | payload             |
    | u8   | u32 big-endian | ``length`` bytes    |
    +------+----------------+---------------------+

Frames are self-delimiting, so a reader never needs lookahead beyond
the 5-byte header, and a bounded ``MAX_FRAME`` means garbage input can
never make a peer allocate unboundedly or block forever waiting for a
length that was really line noise.

Client-to-server frames: HELLO (handshake), QUERY (sql + bound
params), TXN (begin/commit/rollback), META (admin passthrough for the
remote shell), PING (pool health checks), CLOSE (clean goodbye), and
the prepared-statement triple PARSE (name + sql, cached server-side
per connection), BIND (stash a parameter portal for a name) and
EXECUTE (run a prepared statement; parameters may ride inline in the
same frame, which is the one-frame hot path that skips the SQL parser
entirely).  Frames may be **pipelined**: a client can write any number
of frames before reading replies; the server answers strictly in
request order.

Server-to-client frames: WELCOME (protocol/server version + the
current **schema epoch**, so clients can observe the logical switch),
ROW_HEADER / ROW_BATCH / COMPLETE (result-set streaming in row
batches), ERROR (structured: exception class name + SQLSTATE-like code
+ message + whether the session is still in a transaction), PONG,
META_RESULT.

Values use one tag byte per value and cover every
:mod:`repro.types` value kind (NULL, int — with an arbitrary-precision
escape hatch —, float, Decimal, str, bool, date, datetime).  The
**ERROR frame carries the** :mod:`repro.errors` **class name**, and
:func:`reconstruct_error` re-raises the matching class client-side, so
``except TransactionAborted:`` retry loops work unchanged over a
socket.

**Distributed tracing** rides optional frame trailers: a client that
negotiated the ``trace`` capability (HELLO option ``trace=1``,
acknowledged by a CAP_TRACE bit in an optional WELCOME trailer) may
append ``(trace_id, span_id)`` to QUERY / EXECUTE / TXN frames.  Both
trailers sit *after* every pre-existing field, so old peers in either
direction interoperate: an old client never sends trailers and never
triggers the WELCOME one; a new server accepts trailer-less frames as
untraced.

All decode paths raise :class:`~repro.errors.ProtocolError` on
truncated or malformed input — never ``struct.error``, never an
over-read, never a hang.
"""

from __future__ import annotations

import datetime
import struct
from decimal import Decimal, InvalidOperation
from typing import Any, Sequence

from .. import errors
from ..errors import ProtocolError, ReproError

PROTOCOL_VERSION = 1

# An over-the-wire frame longer than this is treated as garbage rather
# than something to buffer for: 16 MiB comfortably fits any batch the
# server emits (it caps batches by row count well below this).
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">BI")
HEADER_SIZE = _HEADER.size

# ----------------------------------------------------------------------
# Frame types
# ----------------------------------------------------------------------

# client -> server
HELLO = 0x01
QUERY = 0x02
TXN = 0x03
META = 0x04
PING = 0x05
CLOSE = 0x06
PARSE = 0x07
BIND = 0x08
EXECUTE = 0x09

# server -> client
WELCOME = 0x81
ROW_HEADER = 0x82
ROW_BATCH = 0x83
COMPLETE = 0x84
ERROR = 0x85
PONG = 0x86
META_RESULT = 0x87
PARSE_OK = 0x88
BIND_OK = 0x89

FRAME_TYPES = frozenset(
    {
        HELLO, QUERY, TXN, META, PING, CLOSE, PARSE, BIND, EXECUTE,
        WELCOME, ROW_HEADER, ROW_BATCH, COMPLETE, ERROR, PONG, META_RESULT,
        PARSE_OK, BIND_OK,
    }
)

# TXN ops
TXN_BEGIN = 1
TXN_COMMIT = 2
TXN_ROLLBACK = 3

# WELCOME capability bits (optional u8 trailer, only sent to clients
# that asked — see encode_welcome)
CAP_TRACE = 0x01

# Trace-trailer marker byte.  The trailer is ``marker u8 == 0x01,
# trace_id i64, span_id i64`` appended after the fixed fields of
# QUERY / EXECUTE / TXN.  A marker value other than 0x01 is reserved
# for future trailer kinds and rejected today.
_TRACE_MARKER = 0x01

# ----------------------------------------------------------------------
# SQLSTATE-like codes
# ----------------------------------------------------------------------

# Most specific class first — the encoder walks the MRO, so subclasses
# not listed here inherit their parent's code.
SQLSTATE_BY_EXC: dict[type, str] = {
    errors.TokenizeError: "42601",
    errors.ParseError: "42601",
    errors.UnknownObjectError: "42P01",
    errors.DuplicateObjectError: "42P07",
    errors.SchemaVersionError: "BF001",
    errors.TypeError_: "42804",
    errors.NotNullViolation: "23502",
    errors.UniqueViolation: "23505",
    errors.CheckViolation: "23514",
    errors.ForeignKeyViolation: "23503",
    errors.ConstraintViolation: "23000",
    errors.DeadlockAvoided: "40P01",
    errors.LockTimeout: "55P03",
    errors.SerializationFailure: "40001",
    errors.TransactionAborted: "40001",
    errors.StorageError: "XX001",
    errors.TransactionError: "25000",
    errors.ExecutionError: "42000",
    errors.MigrationError: "BF000",
    errors.SessionClosed: "08003",
    errors.ProtocolError: "08P01",
    errors.ServerBusyError: "53300",
    errors.ServerShutdownError: "57P01",
    errors.StatementTimeoutError: "57014",
    errors.IdleTimeoutError: "57P05",
    errors.ConnectionClosedError: "08006",
    errors.NetworkError: "08000",
    errors.SqlError: "42601",
    errors.CatalogError: "42P00",
    errors.ReproError: "XX000",
}


def sqlstate_for(exc: BaseException) -> str:
    for cls in type(exc).__mro__:
        code = SQLSTATE_BY_EXC.get(cls)
        if code is not None:
            return code
    return "XX000"


def reconstruct_error(cls_name: str, sqlstate: str, message: str) -> ReproError:
    """Rebuild the server's exception client-side.

    The class is looked up by name in :mod:`repro.errors`; anything
    unknown (or not instantiable from a bare message, like
    ``TokenizeError``) degrades to the nearest constructible ancestor
    and ultimately to :class:`ReproError`, keeping ``except``-clauses
    over the base classes working.
    """
    cls = getattr(errors, cls_name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    for candidate in cls.__mro__:
        if candidate is Exception:
            break
        try:
            exc = candidate(message)  # type: ignore[call-arg]
        except TypeError:
            continue
        exc.sqlstate = sqlstate  # type: ignore[attr-defined]
        return exc
    exc = ReproError(message)
    exc.sqlstate = sqlstate  # type: ignore[attr-defined]
    return exc


# ======================================================================
# Primitive writers
# ======================================================================


class _Writer:
    __slots__ = ("parts",)

    def __init__(self) -> None:
        self.parts: list[bytes] = []

    def u8(self, v: int) -> None:
        self.parts.append(struct.pack(">B", v))

    def u16(self, v: int) -> None:
        self.parts.append(struct.pack(">H", v))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack(">I", v))

    def i64(self, v: int) -> None:
        self.parts.append(struct.pack(">q", v))

    def f64(self, v: float) -> None:
        self.parts.append(struct.pack(">d", v))

    def str(self, s: str) -> None:
        raw = s.encode("utf-8")
        self.u32(len(raw))
        self.parts.append(raw)

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    """Bounded cursor over one frame payload.  Every read checks the
    remaining length first, so truncated input raises
    :class:`ProtocolError` instead of over-reading into the next frame
    (or off the end of the buffer)."""

    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf: bytes, pos: int = 0, end: int | None = None) -> None:
        self.buf = buf
        self.pos = pos
        self.end = len(buf) if end is None else end

    def _take(self, n: int) -> bytes:
        if self.pos + n > self.end:
            raise ProtocolError(
                f"truncated payload: wanted {n} bytes, "
                f"{self.end - self.pos} remain"
            )
        chunk = self.buf[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def i64(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def str(self) -> str:
        length = self.u32()
        if length > self.end - self.pos:
            raise ProtocolError(
                f"truncated string: declared {length} bytes, "
                f"{self.end - self.pos} remain"
            )
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in string field: {exc}") from exc

    def expect_end(self) -> None:
        if self.pos != self.end:
            raise ProtocolError(
                f"{self.end - self.pos} trailing bytes after payload"
            )


# ======================================================================
# Value codec (one tag byte per value)
# ======================================================================

_TAG_NULL = ord("N")
_TAG_INT = ord("q")       # fits a signed 64-bit
_TAG_BIGNUM = ord("I")    # arbitrary-precision int, decimal text
_TAG_FLOAT = ord("f")
_TAG_DECIMAL = ord("d")
_TAG_STR = ord("s")
_TAG_BOOL = ord("b")
_TAG_DATE = ord("D")
_TAG_DATETIME = ord("T")

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


def _write_value(w: _Writer, value: Any) -> None:
    if value is None:
        w.u8(_TAG_NULL)
    elif value is True or value is False:
        w.u8(_TAG_BOOL)
        w.u8(1 if value else 0)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            w.u8(_TAG_INT)
            w.i64(value)
        else:
            w.u8(_TAG_BIGNUM)
            w.str(str(value))
    elif isinstance(value, float):
        w.u8(_TAG_FLOAT)
        w.f64(value)
    elif isinstance(value, Decimal):
        w.u8(_TAG_DECIMAL)
        w.str(str(value))
    elif isinstance(value, str):
        w.u8(_TAG_STR)
        w.str(value)
    elif isinstance(value, datetime.datetime):
        # datetime before date: datetime is a date subclass.
        w.u8(_TAG_DATETIME)
        w.str(value.isoformat())
    elif isinstance(value, datetime.date):
        w.u8(_TAG_DATE)
        w.str(value.isoformat())
    else:
        raise ProtocolError(
            f"cannot encode value of type {type(value).__name__!r}"
        )


def _read_value(r: _Reader) -> Any:
    tag = r.u8()
    if tag == _TAG_NULL:
        return None
    if tag == _TAG_BOOL:
        return r.u8() != 0
    if tag == _TAG_INT:
        return r.i64()
    if tag == _TAG_BIGNUM:
        text = r.str()
        try:
            return int(text)
        except ValueError as exc:
            raise ProtocolError(f"invalid bignum literal {text!r}") from exc
    if tag == _TAG_FLOAT:
        return r.f64()
    if tag == _TAG_DECIMAL:
        text = r.str()
        try:
            return Decimal(text)
        except InvalidOperation as exc:
            raise ProtocolError(f"invalid decimal literal {text!r}") from exc
    if tag == _TAG_STR:
        return r.str()
    if tag == _TAG_DATE:
        text = r.str()
        try:
            return datetime.date.fromisoformat(text)
        except ValueError as exc:
            raise ProtocolError(f"invalid date literal {text!r}") from exc
    if tag == _TAG_DATETIME:
        text = r.str()
        try:
            return datetime.datetime.fromisoformat(text)
        except ValueError as exc:
            raise ProtocolError(f"invalid datetime literal {text!r}") from exc
    raise ProtocolError(f"unknown value tag 0x{tag:02x}")


def _write_row(w: _Writer, row: Sequence[Any]) -> None:
    w.u32(len(row))
    for value in row:
        _write_value(w, value)


def _read_row(r: _Reader) -> tuple:
    count = r.u32()
    if count > r.end - r.pos:
        # Each value costs >= 1 byte, so a count beyond the remaining
        # payload is garbage; reject before looping on it.
        raise ProtocolError(f"row claims {count} values, payload too short")
    return tuple(_read_value(r) for _ in range(count))


# ======================================================================
# Frame assembly / disassembly
# ======================================================================


def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME"
        )
    return _HEADER.pack(ftype, len(payload)) + payload


def decode_frame(buf: bytes, pos: int = 0) -> tuple[int, bytes, int] | None:
    """Try to peel one frame off ``buf`` starting at ``pos``.

    Returns ``(ftype, payload, next_pos)`` or ``None`` when the buffer
    does not yet hold a complete frame.  Raises :class:`ProtocolError`
    for an unknown frame type or an over-limit length — garbage input
    must fail fast, not make the reader wait for bytes that will never
    arrive.
    """
    if len(buf) - pos < HEADER_SIZE:
        return None
    ftype, length = _HEADER.unpack_from(buf, pos)
    if ftype not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type 0x{ftype:02x}")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
    body_start = pos + HEADER_SIZE
    if len(buf) - body_start < length:
        return None
    return ftype, bytes(buf[body_start : body_start + length]), body_start + length


# ----------------------------------------------------------------------
# Per-frame payload codecs.  Encoders return payload bytes; decoders
# take payload bytes and return a dict, always calling ``expect_end``
# so trailing garbage inside a well-framed payload is still rejected.
# ----------------------------------------------------------------------


def _write_trace(w: _Writer, trace: tuple[int, int] | None) -> None:
    """Append the optional trace trailer: ``(trace_id, span_id)`` of
    the client-side span this request belongs to.  Omitted entirely
    when ``trace`` is None, so a frame without one is byte-identical
    to what an old client sends."""
    if trace is None:
        return
    trace_id, span_id = trace
    w.u8(_TRACE_MARKER)
    w.i64(trace_id)
    w.i64(span_id)


def _read_trace(r: _Reader) -> tuple[int, int] | None:
    """Read the optional trace trailer.  Absent (old peer, or tracing
    off) when the payload ends here; malformed markers are rejected so
    garbage never silently becomes a trace id."""
    if r.pos >= r.end:
        return None
    marker = r.u8()
    if marker != _TRACE_MARKER:
        raise ProtocolError(f"unknown request trailer marker 0x{marker:02x}")
    return (r.i64(), r.i64())


def encode_hello(
    client_name: str = "repro",
    version: int = PROTOCOL_VERSION,
    options: dict[str, str] | None = None,
) -> bytes:
    """``options`` is the session-option channel (e.g.
    ``{"isolation": "snapshot"}``).  It is appended after the original
    fixed fields as a u8 count of (key, value) string pairs, so old
    servers that stop reading after ``client_name`` would reject it —
    but new servers still accept old clients, whose payload simply ends
    early (no options)."""
    w = _Writer()
    w.u16(version)
    w.str(client_name)
    if options:
        if len(options) > 255:
            raise ProtocolError("too many HELLO options (max 255)")
        w.u8(len(options))
        for key, value in options.items():
            w.str(key)
            w.str(value)
    return encode_frame(HELLO, w.getvalue())


def decode_hello(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out: dict[str, Any] = {"version": r.u16(), "client_name": r.str()}
    options: dict[str, str] = {}
    if r.pos < r.end:  # optional trailer: absent from old clients
        count = r.u8()
        if count == 0:
            # The encoder omits the trailer entirely when there are no
            # options, so a zero count is garbage, not a valid HELLO.
            raise ProtocolError("empty HELLO options trailer")
        for _ in range(count):
            key = r.str()
            options[key] = r.str()
    out["options"] = options
    r.expect_end()
    return out


def encode_welcome(
    server_version: str, schema_epoch: int, session_id: int,
    version: int = PROTOCOL_VERSION,
    capabilities: int = 0,
) -> bytes:
    """``capabilities`` is an optional u8 bitmask trailer (CAP_*).  The
    server only sends a nonzero mask to clients that *asked* for a
    capability in their HELLO options — an old client never requested
    one, never receives the trailer, and sees a byte-identical WELCOME."""
    w = _Writer()
    w.u16(version)
    w.str(server_version)
    w.i64(schema_epoch)
    w.i64(session_id)
    if capabilities:
        if not 0 < capabilities <= 255:
            raise ProtocolError(f"capability mask {capabilities} out of range")
        w.u8(capabilities)
    return encode_frame(WELCOME, w.getvalue())


def decode_welcome(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {
        "version": r.u16(),
        "server_version": r.str(),
        "schema_epoch": r.i64(),
        "session_id": r.i64(),
    }
    out["capabilities"] = r.u8() if r.pos < r.end else 0
    r.expect_end()
    return out


def encode_query(
    sql: str,
    params: Sequence[Any] = (),
    trace: tuple[int, int] | None = None,
) -> bytes:
    w = _Writer()
    w.str(sql)
    _write_row(w, tuple(params))
    _write_trace(w, trace)
    return encode_frame(QUERY, w.getvalue())


def decode_query(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {"sql": r.str(), "params": _read_row(r)}
    out["trace"] = _read_trace(r)
    r.expect_end()
    return out


def encode_parse(name: str, sql: str) -> bytes:
    w = _Writer()
    w.str(name)
    w.str(sql)
    return encode_frame(PARSE, w.getvalue())


def decode_parse(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {"name": r.str(), "sql": r.str()}
    r.expect_end()
    return out


def encode_parse_ok(name: str) -> bytes:
    w = _Writer()
    w.str(name)
    return encode_frame(PARSE_OK, w.getvalue())


def decode_parse_ok(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {"name": r.str()}
    r.expect_end()
    return out


def encode_bind(name: str, params: Sequence[Any] = ()) -> bytes:
    w = _Writer()
    w.str(name)
    _write_row(w, tuple(params))
    return encode_frame(BIND, w.getvalue())


def decode_bind(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {"name": r.str(), "params": _read_row(r)}
    r.expect_end()
    return out


def encode_bind_ok(name: str) -> bytes:
    w = _Writer()
    w.str(name)
    return encode_frame(BIND_OK, w.getvalue())


def decode_bind_ok(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {"name": r.str()}
    r.expect_end()
    return out


def encode_execute(
    name: str,
    params: Sequence[Any] | None = None,
    trace: tuple[int, int] | None = None,
) -> bytes:
    """EXECUTE a prepared statement.  ``params`` inline binds in the
    same frame (the one-frame hot path); ``None`` executes the portal
    left by the last BIND for this name (or no parameters)."""
    w = _Writer()
    w.str(name)
    if params is None:
        w.u8(0)
    else:
        w.u8(1)
        _write_row(w, tuple(params))
    _write_trace(w, trace)
    return encode_frame(EXECUTE, w.getvalue())


def decode_execute(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    name = r.str()
    has_params = r.u8()
    if has_params not in (0, 1):
        raise ProtocolError(f"bad EXECUTE has_params flag {has_params}")
    params = _read_row(r) if has_params else None
    trace = _read_trace(r)
    r.expect_end()
    return {"name": name, "params": params, "trace": trace}


def encode_txn(op: int, trace: tuple[int, int] | None = None) -> bytes:
    w = _Writer()
    w.u8(op)
    _write_trace(w, trace)
    return encode_frame(TXN, w.getvalue())


def decode_txn(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    op = r.u8()
    trace = _read_trace(r)
    r.expect_end()
    if op not in (TXN_BEGIN, TXN_COMMIT, TXN_ROLLBACK):
        raise ProtocolError(f"unknown TXN op {op}")
    return {"op": op, "trace": trace}


def encode_meta(command: str) -> bytes:
    """META is the admin side channel: one command string in, one text
    blob back (META_RESULT).  The vocabulary is interpreted by the
    server, not the framing, so adding a command never changes the wire
    format.  Current commands: ``metrics [json]``, ``progress``,
    ``tables``, ``describe <table>``, ``top [json]`` (live monitor
    summary), ``history [json] [seconds]`` (metrics-history ring),
    ``health [json]`` / ``healthz`` (rule report), ``dump [reason]``
    (flight-recorder incident bundle).  The ``json`` forms return a
    JSON document as the text payload — the remote ``\\top`` renderer
    and the client's monitoring helpers parse it client-side."""
    w = _Writer()
    w.str(command)
    return encode_frame(META, w.getvalue())


def decode_meta(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {"command": r.str()}
    r.expect_end()
    return out


def encode_meta_result(text: str) -> bytes:
    w = _Writer()
    w.str(text)
    return encode_frame(META_RESULT, w.getvalue())


def decode_meta_result(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {"text": r.str()}
    r.expect_end()
    return out


def encode_row_header(tag: str, columns: Sequence[str]) -> bytes:
    w = _Writer()
    w.str(tag)
    w.u32(len(columns))
    for name in columns:
        w.str(name)
    return encode_frame(ROW_HEADER, w.getvalue())


def decode_row_header(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    tag = r.str()
    count = r.u32()
    if count > r.end - r.pos:
        raise ProtocolError(
            f"row header claims {count} columns, payload too short"
        )
    columns = [r.str() for _ in range(count)]
    r.expect_end()
    return {"tag": tag, "columns": columns}


def encode_row_batch(rows: Sequence[Sequence[Any]]) -> bytes:
    w = _Writer()
    w.u32(len(rows))
    for row in rows:
        _write_row(w, row)
    return encode_frame(ROW_BATCH, w.getvalue())


def decode_row_batch(payload: bytes) -> list[tuple]:
    r = _Reader(payload)
    count = r.u32()
    if count > r.end - r.pos:
        raise ProtocolError(f"batch claims {count} rows, payload too short")
    rows = [_read_row(r) for _ in range(count)]
    r.expect_end()
    return rows


def encode_complete(
    tag: str, rowcount: int, in_transaction: bool, schema_epoch: int
) -> bytes:
    w = _Writer()
    w.str(tag)
    w.i64(rowcount)
    w.u8(1 if in_transaction else 0)
    w.i64(schema_epoch)
    return encode_frame(COMPLETE, w.getvalue())


def decode_complete(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {
        "tag": r.str(),
        "rowcount": r.i64(),
        "in_transaction": r.u8() != 0,
        "schema_epoch": r.i64(),
    }
    r.expect_end()
    return out


def encode_error(exc: BaseException, in_transaction: bool) -> bytes:
    w = _Writer()
    w.str(type(exc).__name__)
    w.str(sqlstate_for(exc))
    w.str(str(exc))
    w.u8(1 if in_transaction else 0)
    return encode_frame(ERROR, w.getvalue())


def decode_error(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {
        "error_class": r.str(),
        "sqlstate": r.str(),
        "message": r.str(),
        "in_transaction": r.u8() != 0,
    }
    r.expect_end()
    return out


def encode_ping() -> bytes:
    return encode_frame(PING)


def encode_pong(schema_epoch: int) -> bytes:
    w = _Writer()
    w.i64(schema_epoch)
    return encode_frame(PONG, w.getvalue())


def decode_pong(payload: bytes) -> dict[str, Any]:
    r = _Reader(payload)
    out = {"schema_epoch": r.i64()}
    r.expect_end()
    return out


def encode_close() -> bytes:
    return encode_frame(CLOSE)


# ----------------------------------------------------------------------
# Socket I/O helpers
# ----------------------------------------------------------------------


class FrameStream:
    """Buffered frame reader/writer over a socket-like object.

    ``recv_frame`` blocks until one complete frame is available (or the
    peer closes / a socket timeout fires, which propagate as the
    socket's own exceptions).  The internal buffer only ever holds
    bytes the peer already framed, bounded by ``MAX_FRAME`` via
    :func:`decode_frame`'s length check.
    """

    __slots__ = ("sock", "_buf")

    def __init__(self, sock: Any) -> None:
        self.sock = sock
        self._buf = b""

    def send_frame(self, frame: bytes) -> int:
        self.sock.sendall(frame)
        return len(frame)

    def recv_frame(self) -> tuple[int, bytes] | None:
        """Next frame, or ``None`` on clean EOF at a frame boundary.
        EOF mid-frame raises :class:`ProtocolError`."""
        while True:
            decoded = decode_frame(self._buf)
            if decoded is not None:
                ftype, payload, consumed = decoded
                self._buf = self._buf[consumed:]
                return ftype, payload
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buf:
                    raise ProtocolError("connection closed mid-frame")
                return None
            self._buf += chunk

    def bytes_buffered(self) -> int:
        return len(self._buf)
