"""BullFrog reproduction: online schema evolution via lazy evaluation.

A from-scratch Python implementation of the BullFrog system (SIGMOD
2021): an embedded relational engine plus a lazy, exactly-once schema
migration layer, with eager and multi-step baselines, a TPC-C workload
extended with schema migrations, and an OLTP-Bench-style harness.

Quickstart::

    from repro import Database, MigrationController, Strategy

    db = Database()
    session = db.connect()
    # ... create and fill the old schema ...
    controller = MigrationController(db)
    controller.submit("my-migration", ddl, strategy=Strategy.LAZY)
    # the new schema is immediately live; data migrates lazily.
"""

from .db import Database, Result, Session
from .errors import (
    MigrationError,
    ReproError,
    SchemaVersionError,
    TransactionAborted,
)
from .core import (
    BackgroundConfig,
    ConflictMode,
    LazyMigrationEngine,
    MigrationController,
    Strategy,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Result",
    "Session",
    "MigrationError",
    "ReproError",
    "SchemaVersionError",
    "TransactionAborted",
    "BackgroundConfig",
    "ConflictMode",
    "LazyMigrationEngine",
    "MigrationController",
    "Strategy",
    "__version__",
]
