"""Export surfaces: Prometheus text, JSON snapshot, optional HTTP.

Everything here is a pure string render over a
:class:`~repro.obs.registry.MetricRegistry` (no HTTP dependency); the
optional endpoint is stdlib ``http.server`` only, started on demand —
a scrape target for a real Prometheus, or ``curl``-able during a long
bench run.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from .registry import MetricRegistry
from .trace import TraceLog


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _render_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: MetricRegistry) -> str:
    """The Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, cell in family.samples():
            if family.kind == "histogram":
                snap = cell.snapshot()
                for le, count in snap["buckets"].items():
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_render_labels(labels, {'le': le})} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{_render_labels(labels)} "
                    f"{_format_value(snap['sum'])}"
                )
                lines.append(
                    f"{family.name}_count{_render_labels(labels)} {snap['count']}"
                )
            else:
                value = cell.value
                if value is None:
                    continue  # unset gauge: no sample
                lines.append(
                    f"{family.name}{_render_labels(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


def snapshot_json(registry: MetricRegistry, indent: int | None = None) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, default=str)


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricRegistry
    trace: TraceLog | None
    history: Any  # MetricsHistory | None
    health: Any  # HealthEngine | None
    server_ref: Any  # the owning MetricsServer (draining flag)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        path = parsed.path
        status = 200
        if path in ("/metrics", "/"):
            body = render_prometheus(self.registry).encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = snapshot_json(self.registry).encode()
            content_type = "application/json"
        elif path == "/trace" and self.trace is not None:
            body = self.trace.to_chrome_json().encode()
            content_type = "application/json"
        elif path == "/metrics/history" and self.history is not None:
            window = None
            raw = parse_qs(parsed.query).get("seconds")
            if raw:
                try:
                    window = float(raw[0])
                except ValueError:
                    self.send_error(400, "seconds must be a number")
                    return
            body = json.dumps(
                self.history.to_json(window), default=str
            ).encode()
            content_type = "application/json"
        elif path == "/healthz":
            status, body = self._healthz()
            content_type = "application/json"
        else:
            self.send_error(404)
            return
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _healthz(self) -> tuple[int, bytes]:
        """Liveness/health: 503 while the server drains for shutdown or
        a critical rule is breached; 200 otherwise.  With no health
        engine attached the endpoint still exists — a bare metrics
        server is alive by definition — so load balancers get a
        liveness surface either way."""
        server = self.server_ref
        if server is not None and server.draining:
            return 503, json.dumps({"status": "draining"}).encode()
        health = self.health
        if health is None:
            return 200, json.dumps(
                {"status": "ok", "detail": "no health engine attached"}
            ).encode()
        report = health.report(max_age=1.0)
        status = 200 if health.healthy else 503
        return status, json.dumps(report, default=str).encode()

    def log_message(self, format: str, *args: Any) -> None:  # silence stderr
        pass


class MetricsServer:
    """A background stdlib HTTP endpoint over one registry (+ trace,
    history, health).

    ``port=0`` binds an ephemeral port (tests); ``server.port`` reports
    the bound one.  Shutdown is graceful and idempotent:
    :meth:`begin_drain` flips ``/healthz`` to 503 (so a load balancer
    stops routing before the socket goes away), and :meth:`close`
    drains, stops the serve loop, closes the socket, and joins the
    thread — calling it twice is a no-op, not an error.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        trace: TraceLog | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        history: Any = None,
        health: Any = None,
    ) -> None:
        self.draining = False
        handler = type(
            "_BoundMetricsHandler",
            (_MetricsHandler,),
            {
                "registry": registry,
                "trace": trace,
                "history": history,
                "health": health,
                "server_ref": self,
            },
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self.host = host
        self.port = self._server.server_address[1]
        self._closed = False
        self._close_latch = threading.Lock()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def begin_drain(self) -> None:
        """Advertise imminent shutdown: ``/healthz`` answers 503 from
        here on while the other endpoints keep serving (scrapes during
        a rolling restart still land)."""
        self.draining = True

    def close(self) -> None:
        with self._close_latch:
            if self._closed:
                return
            self._closed = True
        self.begin_drain()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def start_metrics_server(
    registry: MetricRegistry,
    trace: TraceLog | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    history: Any = None,
    health: Any = None,
) -> MetricsServer:
    return MetricsServer(
        registry, trace=trace, host=host, port=port,
        history=history, health=health,
    )


__all__ = [
    "MetricsServer",
    "render_prometheus",
    "snapshot_json",
    "start_metrics_server",
]
