"""In-database introspection: EXPLAIN ANALYZE, the ``bullfrog_stat_*``
system views, lock-wait profiling, and migration progress/ETA."""

import threading
import time

import pytest

from repro import BackgroundConfig, Database, LazyMigrationEngine
from repro.core import MigrationController, Strategy
from repro.errors import (
    DeadlockAvoided,
    DuplicateObjectError,
    ExecutionError,
    ParseError,
)
from repro.obs import SYSTEM_VIEW_NAMES, Observability
from repro.tpcc import split_migration_ddl
from repro.txn.locks import DeadlockPolicy, LockManager, LockMode


def make_source_db(rows=50):
    db = Database()
    s = db.connect()
    s.execute(
        "CREATE TABLE src (id INT PRIMARY KEY, grp INT, v INT, tag VARCHAR(10))"
    )
    for i in range(rows):
        s.execute(
            "INSERT INTO src VALUES (?, ?, ?, ?)", [i, i % 5, i * 10, f"t{i % 3}"]
        )
    return db, s


SPLIT_DDL = """
CREATE TABLE left_part (id INT PRIMARY KEY, v INT);
INSERT INTO left_part (id, v) SELECT id, v FROM src;
CREATE TABLE right_part (id INT PRIMARY KEY, tag VARCHAR(10));
INSERT INTO right_part (id, tag) SELECT id, tag FROM src;
"""


def plan_lines(result):
    assert result.columns == ["QUERY PLAN"]
    return [row[0] for row in result.rows]


# ======================================================================
# EXPLAIN [ANALYZE] as a real statement
# ======================================================================
class TestExplainStatement:
    def test_plain_explain_through_execute(self, session):
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        result = session.execute("EXPLAIN SELECT v FROM t WHERE id = 1")
        lines = plan_lines(result)
        assert any("Index Scan" in line or "Seq Scan" in line for line in lines)
        # Plain EXPLAIN never runs the query, so no actual-time counters.
        assert not any("actual time" in line for line in lines)

    def test_analyze_reports_per_node_counters(self, session):
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        for i in range(20):
            session.execute("INSERT INTO t VALUES (?, ?)", [i, f"v{i}"])
        result = session.execute(
            "EXPLAIN ANALYZE SELECT v FROM t WHERE id < 10 ORDER BY v"
        )
        lines = plan_lines(result)
        annotated = [line for line in lines if "actual time" in line]
        # Project, Sort, and the scan each carry their own counters.
        assert len(annotated) >= 3
        assert any("rows=10" in line for line in annotated)
        assert any(line.startswith("Execution Time:") for line in lines)

    def test_analyze_executes_the_query(self, session):
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        result = session.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM t")
        lines = plan_lines(result)
        assert any("rows=1" in line for line in lines)

    def test_explain_requires_select(self, session):
        with pytest.raises(ParseError):
            session.execute("EXPLAIN INSERT INTO t VALUES (1)")

    def test_plain_select_unchanged_after_analyze(self, session):
        """ANALYZE instruments a throwaway clone — the cached plan a
        normal SELECT uses must stay untouched."""
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        session.execute("INSERT INTO t VALUES (1, 'x')")
        sql = "SELECT v FROM t WHERE id = 1"
        before = session.execute(sql).rows
        session.execute(f"EXPLAIN ANALYZE {sql}")
        session.execute(f"EXPLAIN ANALYZE {sql}")
        assert session.execute(sql).rows == before
        plain = plan_lines(session.execute(f"EXPLAIN {sql}"))
        assert not any("actual time" in line for line in plain)

    def test_session_explain_accepts_explain_prefix(self, session):
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        text = session.explain("EXPLAIN SELECT * FROM t")
        assert "Seq Scan" in text or "Scan" in text

    def test_analyze_shows_migrate_stall_on_lazy_path(self):
        db, _ = make_source_db()
        engine = LazyMigrationEngine(db, background=BackgroundConfig(enabled=False))
        engine.submit("m", SPLIT_DDL)
        # Pinned: asserts the 2PL lazy-migration stall line.
        session = db.connect(isolation="read_committed")
        result = session.execute(
            "EXPLAIN ANALYZE SELECT v FROM left_part WHERE id = 7"
        )
        lines = plan_lines(result)
        stall = [line for line in lines if line.startswith("Lazy Migration:")]
        assert len(stall) == 1
        assert "stall=" in stall[0]
        # Exactly this query's scope was migrated before execution.
        assert "granules=+1" in stall[0]
        assert "tuples=+1" in stall[0]
        # And the instrumented scan saw the freshly migrated row.
        assert any("actual time" in line and "rows=1" in line for line in lines)

    def test_analyze_already_migrated_scope_reports_zero_delta(self):
        db, _ = make_source_db()
        engine = LazyMigrationEngine(db, background=BackgroundConfig(enabled=False))
        engine.submit("m", SPLIT_DDL)
        session = db.connect()
        session.execute("SELECT v FROM left_part WHERE id = 7")
        result = session.execute(
            "EXPLAIN ANALYZE SELECT v FROM left_part WHERE id = 7"
        )
        stall = [l for l in plan_lines(result) if l.startswith("Lazy Migration:")]
        assert "granules=+0" in stall[0]
        assert "tuples=+0" in stall[0]


# ======================================================================
# System views
# ======================================================================
class TestSystemViews:
    def test_all_views_queryable_on_fresh_database(self, session):
        for view in SYSTEM_VIEW_NAMES:
            result = session.execute(f"SELECT * FROM {view}")
            assert result.columns  # schema exposed even when empty

    def test_activity_shows_own_transaction(self, db):
        session = db.connect()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with session.transaction():
            session.execute("INSERT INTO t VALUES (1)")
            rows = session.execute(
                "SELECT * FROM bullfrog_stat_activity"
            ).dicts()
            mine = [r for r in rows if r["state"] == "ACTIVE"]
            assert len(mine) == 1
            assert mine[0]["locks_held"] >= 1
            assert mine[0]["redo_records"] >= 1

    def test_views_support_filters_and_projection(self, session):
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        result = session.execute(
            "SELECT stmt, calls FROM bullfrog_stat_statements WHERE stmt = 'ddl'"
        )
        # obs is detached by default, so the view is empty — but the
        # filter/projection pipeline over a virtual scan must work.
        assert result.columns == ["stmt", "calls"]

    def test_statements_view_with_metrics_attached(self):
        obs = Observability(metrics=True, tracing=False, sample_statements=1)
        db = Database(obs=obs)
        s = db.connect()
        s.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(5):
            s.execute("INSERT INTO t VALUES (?)", [i])
        s.execute("SELECT * FROM t")
        rows = {r["stmt"]: r for r in s.execute(
            "SELECT * FROM bullfrog_stat_statements"
        ).dicts()}
        assert rows["insert"]["calls"] == 5
        assert rows["insert"]["sampled"] == 5
        assert rows["insert"]["mean_seconds"] > 0
        assert rows["select"]["calls"] >= 1

    def test_views_are_read_only(self, session):
        with pytest.raises(ExecutionError):
            session.execute("INSERT INTO bullfrog_stat_locks VALUES (1)")
        with pytest.raises(ExecutionError):
            session.execute("DELETE FROM bullfrog_stat_activity")
        with pytest.raises(ExecutionError):
            session.execute("UPDATE bullfrog_stat_migrations SET unit = 'x'")

    def test_view_names_are_reserved(self, session):
        with pytest.raises(DuplicateObjectError):
            session.execute("CREATE TABLE bullfrog_stat_locks (id INT)")

    def test_migrations_view_during_live_tpcc_split(self, tpcc_db):
        """The acceptance scenario: all four views answer plain SQL
        while a TPC-C customer-split migration is in flight."""
        controller = MigrationController(tpcc_db)
        controller.submit(
            "split",
            split_migration_ddl(),
            strategy=Strategy.LAZY,
            background=BackgroundConfig(enabled=False),
        )
        # Pinned: SELECTs must lazy-migrate their granules.
        session = tpcc_db.connect(isolation="read_committed")
        # Touch a few customers: lazy-migrates their granules.
        for c_id in (1, 2, 3):
            session.execute(
                "SELECT c_balance FROM customer_private "
                "WHERE c_w_id = 1 AND c_d_id = 1 AND c_id = ?",
                [c_id],
            )
        rows = session.execute(
            "SELECT * FROM bullfrog_stat_migrations"
        ).dicts()
        assert rows, "live migration must appear in the view"
        assert all(r["migration"] == "split" for r in rows)
        total_migrated = sum(r["tuples_migrated"] for r in rows) / len(rows)
        assert total_migrated >= 3
        # Mid-migration: progress strictly between 0 and 1 somewhere.
        fractions = [r["fraction"] for r in rows if r["fraction"] is not None]
        assert fractions
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert any(0.0 < f < 1.0 for f in fractions)
        assert not any(r["complete"] for r in rows)
        # The other three views answer through the same SQL surface.
        activity = session.execute("SELECT * FROM bullfrog_stat_activity")
        assert activity.columns[0] == "txn_id"
        locks = session.execute("SELECT * FROM bullfrog_stat_locks")
        assert locks.columns[0] == "resource_class"
        stmts = session.execute("SELECT * FROM bullfrog_stat_statements")
        assert stmts.columns[0] == "stmt"
        controller.active.shutdown()

    def test_progress_keys_and_eta_lifecycle(self):
        db, _ = make_source_db()
        engine = LazyMigrationEngine(db, background=BackgroundConfig(enabled=False))
        engine.submit("m", SPLIT_DDL)
        session = db.connect()
        progress = engine.progress()
        for key in ("fraction", "tuples_per_sec", "eta_seconds",
                    "background_passes", "granules_total"):
            assert key in progress
        assert progress["fraction"] == 0.0
        # Drain the migration through client queries.
        for i in range(50):
            session.execute("SELECT v FROM left_part WHERE id = ?", [i])
        engine.finalize()
        progress = engine.progress()
        assert progress["complete"]
        assert progress["fraction"] == 1.0
        assert progress["eta_seconds"] == 0.0


# ======================================================================
# Lock-wait profiling
# ======================================================================
class TestLockWaitProfiling:
    def test_probes_do_not_create_entries(self):
        locks = LockManager(timeout=1.0)
        assert locks.held_mode(1, ("table", "ghost")) is None
        assert locks.waiter_count(("table", "ghost")) == 0
        assert ("table", "ghost") not in locks._entries

    def test_probe_hammer_consistency(self):
        """Concurrent acquire/release vs held_mode/waiter_count probes:
        no exceptions, no phantom entries, and every probed value is one
        the resource legitimately had."""
        locks = LockManager(timeout=5.0)
        resources = [("tuple", "t", i) for i in range(8)]
        ghosts = [("tuple", "ghost", i) for i in range(8)]
        stop = threading.Event()
        errors = []

        def churner(txn_id):
            try:
                while not stop.is_set():
                    for resource in resources:
                        locks.acquire(txn_id, resource, LockMode.S)
                    for resource in resources:
                        locks.release(txn_id, resource)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def prober():
            try:
                while not stop.is_set():
                    for resource in resources + ghosts:
                        mode = locks.held_mode(1, resource)
                        assert mode in (None, LockMode.S)
                        assert locks.waiter_count(resource) >= 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churner, args=(i + 1,)) for i in range(2)]
        threads += [threading.Thread(target=prober) for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        assert not errors
        for ghost in ghosts:
            assert ghost not in locks._entries

    def test_contended_wait_is_recorded(self):
        locks = LockManager(timeout=5.0)
        resource = ("table", "t")
        locks.acquire(1, resource, LockMode.X)
        acquired = threading.Event()

        def waiter():
            locks.acquire(2, resource, LockMode.S)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        # Let txn 2 actually block, then release.
        deadline = time.monotonic() + 5.0
        while locks.waiter_count(resource) == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        time.sleep(0.02)
        locks.release(1, resource)
        assert acquired.wait(5.0)
        thread.join(timeout=5.0)
        (row,) = [r for r in locks.snapshot() if r["resource"] == repr(resource)]
        assert row["resource_class"] == "table"
        assert row["wait_count"] == 1
        assert row["wait_seconds"] > 0.0
        assert row["last_blockers"] == [1]
        assert row["holders"] == [2]

    def test_uncontended_acquires_leave_no_profile(self):
        locks = LockManager(timeout=1.0)
        locks.acquire(1, ("table", "t"), LockMode.S)
        locks.release(1, ("table", "t"))
        # Idle + never contended -> filtered from the snapshot.
        assert locks.snapshot() == []

    def test_lock_wait_metrics_flow_to_registry(self):
        obs = Observability(metrics=True, tracing=False)
        locks = LockManager(timeout=5.0)
        locks.obs = obs
        resource = ("tuple", "t", 1)
        locks.acquire(1, resource, LockMode.X)

        def waiter():
            locks.acquire(2, resource, LockMode.X)

        thread = threading.Thread(target=waiter)
        thread.start()
        while locks.waiter_count(resource) == 0:
            time.sleep(0.001)
        locks.release(1, resource)
        thread.join(timeout=5.0)
        cell = obs.lock_wait_latency.labels(resource="tuple")
        assert cell.count == 1
        assert cell.sum > 0.0


class TestDeadlockProfiling:
    def _three_txn_cycle(self, policy):
        """Force T1->T2->T3->T1 over three resources; return the lock
        manager and the DeadlockAvoided errors raised (by txn id)."""
        locks = LockManager(timeout=10.0, policy=policy)
        a, b, c = ("table", "a"), ("table", "b"), ("table", "c")
        locks.acquire(1, a, LockMode.X)
        locks.acquire(2, b, LockMode.X)
        locks.acquire(3, c, LockMode.X)
        died: dict[int, DeadlockAvoided] = {}
        barrier = threading.Barrier(2)

        def run(txn_id, want):
            try:
                if txn_id == 3:
                    barrier.wait(timeout=5.0)  # T2 must be queued first
                locks.acquire(txn_id, want, LockMode.X)
            except DeadlockAvoided as exc:
                died[txn_id] = exc
            finally:
                held = [r for r in (a, b, c)
                        if locks.held_mode(txn_id, r) is not None]
                locks.release_all(txn_id, held)

        # T1 -> b (blocks on T2), T2 -> c (blocks on T3), T3 -> a closes
        # the cycle.  T1 runs on this thread *after* the others queue.
        t2 = threading.Thread(target=run, args=(2, c))
        t3 = threading.Thread(target=run, args=(3, a))
        t2.start()
        deadline = time.monotonic() + 5.0
        while locks.waiter_count(c) == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        t3.start()
        barrier.wait(timeout=5.0)
        run(1, b)
        t2.join(timeout=10.0)
        t3.join(timeout=10.0)
        return locks, (a, b, c), died

    def test_detect_policy_aborts_cycle_closer(self):
        locks, (a, b, c), died = self._three_txn_cycle(DeadlockPolicy.DETECT)
        assert died, "someone must die to break the cycle"
        total_aborts = sum(r["deadlock_aborts"] for r in locks.snapshot())
        assert total_aborts == len(died)
        # The victim's abort is attributed to the resource it waited on.
        victim = next(iter(died))
        waited_on = {3: a, 2: c, 1: b}[victim]
        (row,) = [r for r in locks.snapshot()
                  if r["resource"] == repr(waited_on)]
        assert row["deadlock_aborts"] >= 1

    def test_wait_die_policy_kills_younger(self):
        locks, (a, b, c), died = self._three_txn_cycle(DeadlockPolicy.WAIT_DIE)
        # Wait-die: anyone blocked by an older txn dies immediately, so
        # the cycle can never form.  T2 (waits for younger T3's c) may
        # survive; T3 (waits for older T1's a) always dies.
        assert 3 in died
        assert 1 not in died  # oldest never dies under wait-die
        total_aborts = sum(r["deadlock_aborts"] for r in locks.snapshot())
        assert total_aborts == len(died)

    def test_deadlock_counters_reach_view_and_registry(self):
        """End to end: a deadlock between two sessions shows up in the
        registry counter and in ``bullfrog_stat_locks`` via plain SQL."""
        obs = Observability(metrics=True, tracing=False)
        db = Database(obs=obs, deadlock_policy=DeadlockPolicy.DETECT)
        s1, s2 = db.connect(), db.connect()
        s1.execute("CREATE TABLE t1 (id INT PRIMARY KEY)")
        s1.execute("CREATE TABLE t2 (id INT PRIMARY KEY)")
        s1.execute("INSERT INTO t1 VALUES (1)")
        s1.execute("INSERT INTO t2 VALUES (1)")
        s1.begin()
        s2.begin()
        s1.execute("UPDATE t1 SET id = 1 WHERE id = 1")
        s2.execute("UPDATE t2 SET id = 1 WHERE id = 1")
        failed = {}

        def cross():
            try:
                s2.execute("UPDATE t1 SET id = 1 WHERE id = 1")
            except DeadlockAvoided as exc:
                # The victim's txn is already aborted by the manager.
                failed["s2"] = exc

        thread = threading.Thread(target=cross)
        thread.start()
        time.sleep(0.05)
        try:
            s1.execute("UPDATE t2 SET id = 1 WHERE id = 1")
        except DeadlockAvoided as exc:
            failed["s1"] = exc
        thread.join(timeout=10.0)
        if s1.in_transaction:
            s1.commit()
        if s2.in_transaction:
            s2.commit()
        assert failed, "the cross update must deadlock one session"
        assert obs.deadlocks_total.value == len(failed)
        monitor = db.connect()
        rows = monitor.execute(
            "SELECT * FROM bullfrog_stat_locks WHERE deadlock_aborts > 0"
        ).dicts()
        assert rows
        assert sum(r["deadlock_aborts"] for r in rows) == len(failed)
