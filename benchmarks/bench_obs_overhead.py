"""Overhead of the observability layer on the no-op migration hot loop.

The zero-cost-when-detached contract (``repro.obs``): every emission
site is guarded by a plain ``<owner>.obs is not None`` attribute check
— the same contract ``repro.core.faults`` established and
``bench_fault_overhead.py`` holds to numbers.  This benchmark prices
two configurations against the production default (``obs=None``):

* **attached but disabled** — ``Observability(metrics=False,
  tracing=False)``: the guards all pass and early-out on the
  ``active`` flag; this bounds the cost of the seams themselves and
  must stay under **2%**;
* **metrics enabled** (tracing off) — exact counters on every
  statement, commit, and claim round, plus the latency histogram at
  its default 1-in-16 statement sampling; must stay under **5%**;
* **tracing enabled** — the full request-tracing surface: head-sampled
  root statement spans (a coarser 1-in-64 period; a propagated trace
  context always traces), wait-event staging, and the trace ring;
  must also stay under **5%**;
* **history sampler** — the background metrics-history thread
  (``obs.attach_history()``) scraping the registry at its default
  250 ms cadence while the hot loop runs.  The sampler never touches
  the statement path — its cost is pure thread interference plus
  whatever per-metric locks the scrape takes — so it rides the same
  bounds: **<2%** over an attached-but-disabled bundle, **<5%** with
  metrics enabled.

The measured regime is the *no-op migration hot loop*: a lazy SPLIT is
submitted and drained down to one remaining granule (untimed), then we
time point SELECTs against already-migrated granules.  Each statement
still enters the Algorithm-1 claim loop — the interceptor scopes it,
``try_begin`` answers DONE, the loop breaks — which is the steady-state
path a live system pays on every query while a migration is in flight.
Timing the *initial* drain instead would amplify the instrumentation
~10x (a full migration transaction per statement) and measure the cost
of migrating, not the cost of observing.

Methodology — two noise sources, two countermeasures:

* **Heap-layout variance.**  Two separately-built ``Database``
  instances differ by ±10% on identical work (allocator layout, dict
  order), which swamps a ~2 µs/statement effect.  So both sides of
  every comparison run against the *same* database, engine, and
  session; only the ``obs`` attachment is swapped between timed passes
  (the attach points are plain attributes, re-read on every seam).
* **Scheduler noise and process-lifetime drift.**  Long timed passes
  drift several percent over a run on a loaded host, so the timing is
  interleaved at fine grain: short blocks of ~100 statements alternate
  attach state.  Three estimators are computed over the block series —
  the median per-pair ratio (cancels drift: both blocks of a pair move
  together), the total-time ratio (averages noise), and the ratio of
  per-side minimum blocks (noise is additive and one-sided, so the
  minimum estimates intrinsic cost) — and any one staying under the
  bound passes.  A genuine regression is intrinsic to every
  instrumented block and shows up in all three; an uncorrelated load
  spike does not.
"""

import gc
import itertools
import statistics
import time

from repro import BackgroundConfig, Database, LazyMigrationEngine
from repro.obs import Observability

ROWS = 600
BLOCK = 100  # statements per timed block
PAIRS = 60  # adjacent baseline/instrumented block pairs

SPLIT_DDL = """
CREATE TABLE left_part (id INT PRIMARY KEY, v INT);
INSERT INTO left_part (id, v) SELECT id, v FROM src;
CREATE TABLE right_part (id INT PRIMARY KEY, tag VARCHAR(10));
INSERT INTO right_part (id, tag) SELECT id, tag FROM src;
"""


def _setup():
    """Database + engine with a migration drained to one remaining
    granule, so the claim loop stays live for every later statement."""
    db = Database()
    s = db.connect()
    s.execute(
        "CREATE TABLE src (id INT PRIMARY KEY, grp INT, v INT, tag VARCHAR(10))"
    )
    for i in range(ROWS):
        s.execute(
            "INSERT INTO src VALUES (?, ?, ?, ?)", [i, i % 5, i * 10, f"t{i % 3}"]
        )
    engine = LazyMigrationEngine(
        db,
        background=BackgroundConfig(enabled=False),
    )
    session = db.connect()
    engine.submit("m", SPLIT_DDL)
    for i in range(ROWS - 1):
        session.execute("SELECT v FROM left_part WHERE id = ?", [i])
    assert engine.stats.tuples_migrated == ROWS - 1
    assert not engine.is_complete
    return db, engine, session


def _attach(db, engine, obs):
    """Swap the observability attachment on live objects.  Every seam
    re-reads its owner's ``obs`` attribute, so this flips the entire
    instrumentation surface without rebuilding any state."""
    db.obs = obs
    db.txns.obs = obs
    db.txns.wal.obs = obs
    db.txns.locks.obs = obs
    db.executor.obs = obs
    engine.obs = obs


def _time_block(session, execute, ids):
    started = time.perf_counter()
    for _ in range(BLOCK):
        execute("SELECT v FROM left_part WHERE id = ?", [next(ids)])
    return time.perf_counter() - started


def measure(make_obs):
    """Returns (total baseline seconds, total instrumented seconds,
    median per-block-pair overhead ratio) for ``obs=None`` vs
    ``make_obs()`` over fine-grained interleaved blocks on one shared
    database."""
    db, engine, session = _setup()
    obs = make_obs()
    execute = session.execute
    ids = itertools.cycle(range(ROWS - 1))
    for state in (None, obs, None, obs):  # warm both states, discarded
        _attach(db, engine, state)
        _time_block(session, execute, ids)
    gc.collect()
    gc.disable()  # no collection pauses inside timed blocks
    try:
        base_blocks: list[float] = []
        inst_blocks: list[float] = []
        for pair in range(PAIRS):
            # Alternate within-pair order so drift across a pair
            # cancels over the run instead of biasing one side.
            if pair % 2 == 0:
                _attach(db, engine, None)
                base_blocks.append(_time_block(session, execute, ids))
                _attach(db, engine, obs)
                inst_blocks.append(_time_block(session, execute, ids))
            else:
                _attach(db, engine, obs)
                inst_blocks.append(_time_block(session, execute, ids))
                _attach(db, engine, None)
                base_blocks.append(_time_block(session, execute, ids))
    finally:
        gc.enable()
        obs.close()  # stop any history sampler thread between legs
    assert not engine.is_complete  # every timed statement took the loop
    return base_blocks, inst_blocks


def _estimates(base_blocks, inst_blocks):
    """Three overhead estimators over the interleaved blocks.  Noise on
    this host is additive and one-sided (preemption only ever adds
    time), so each estimator discards it differently: the per-pair
    median cancels drift, the totals average it, and the ratio of
    per-side minima (every block runs identical work) estimates the
    intrinsic cost directly — a genuine regression is intrinsic and
    shows up in *all three*."""
    ratios = [i / b - 1.0 for b, i in zip(base_blocks, inst_blocks)]
    paired = statistics.median(ratios)
    total = sum(inst_blocks) / sum(base_blocks) - 1.0
    floor = min(inst_blocks) / min(base_blocks) - 1.0
    return paired, total, floor


def _check_overhead(make_obs, bound, label):
    base_blocks, inst_blocks = measure(make_obs)
    paired, total, floor = _estimates(base_blocks, inst_blocks)
    if min(paired, total, floor) >= bound:
        # One re-measure: a genuine cost reproduces across both
        # attempts; an uncorrelated load spike on a shared box does not.
        base_blocks, inst_blocks = measure(make_obs)
        paired, total, floor = _estimates(base_blocks, inst_blocks)
    print(
        f"\n{label} overhead: baseline={sum(base_blocks) * 1e3:.1f}ms "
        f"instrumented={sum(inst_blocks) * 1e3:.1f}ms "
        f"paired-median delta={paired * 100:+.2f}% "
        f"total delta={total * 100:+.2f}% "
        f"min-vs-min delta={floor * 100:+.2f}%"
    )
    assert min(paired, total, floor) < bound, (
        f"{label} cost {paired * 100:.2f}% (paired) / "
        f"{total * 100:.2f}% (total) / {floor * 100:.2f}% (min-vs-min), "
        f"bound {bound * 100:.0f}%"
    )


def test_disabled_instrumentation_is_cheap():
    """Attached-but-disabled observability: every guard passes, every
    emission early-outs.  Contract: <2% end-to-end."""
    _check_overhead(
        lambda: Observability(metrics=False, tracing=False),
        0.02,
        "disabled-instrumentation",
    )


def test_enabled_metrics_are_cheap():
    """Live counters + histograms on every seam (tracing off).
    Contract: <5% end-to-end."""
    _check_overhead(
        lambda: Observability(metrics=True, tracing=False),
        0.05,
        "enabled-metrics",
    )


def test_enabled_tracing_is_cheap():
    """Metrics + tracing, the full default configuration.  Untraced
    statements pay one signed clock read over the metrics path; the
    1-in-64 head-sampled roots pay the full span/context machinery,
    amortized.  Contract: <5% end-to-end."""
    _check_overhead(
        lambda: Observability(),
        0.05,
        "enabled-tracing",
    )


def _with_sampler(**obs_kwargs):
    """An observability bundle with the history sampler running — what
    a monitored deployment (bullfrogd with ``config.monitor``) attaches.
    The sampler thread scrapes concurrently with the timed blocks;
    ``measure()`` stops it via ``obs.close()``."""
    obs = Observability(**obs_kwargs)
    obs.attach_history()
    return obs


def test_history_sampler_on_disabled_bundle_is_cheap():
    """Sampler thread over an attached-but-disabled bundle: the
    statement path still only pays the guards; the scrape walks an
    (empty-valued) registry off to the side.  Contract: <2%."""
    _check_overhead(
        lambda: _with_sampler(metrics=False, tracing=False),
        0.02,
        "history-sampler-disabled",
    )


def test_history_sampler_with_metrics_is_cheap():
    """The monitored-production configuration: live counters and
    histograms on every seam plus the 250 ms history scrape taking
    per-metric locks against the hot loop.  Contract: <5%."""
    _check_overhead(
        lambda: _with_sampler(metrics=True, tracing=False),
        0.05,
        "history-sampler-metrics",
    )


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE: instrumentation is opt-in per statement
# ----------------------------------------------------------------------
def _measure_analyze():
    """Interleaved blocks of plain SELECT vs EXPLAIN ANALYZE SELECT on
    the same database/session (obs detached throughout).  This prices
    what ANALYZE *adds* — plan cloning, per-``next()`` clock reads, the
    interceptor timing — against the statement it wraps."""
    db, engine, session = _setup()
    _attach(db, engine, None)
    execute = session.execute
    ids = itertools.cycle(range(ROWS - 1))

    def plain_block():
        started = time.perf_counter()
        for _ in range(BLOCK):
            execute("SELECT v FROM left_part WHERE id = ?", [next(ids)])
        return time.perf_counter() - started

    def analyze_block():
        started = time.perf_counter()
        for _ in range(BLOCK):
            execute("EXPLAIN ANALYZE SELECT v FROM left_part WHERE id = ?", [next(ids)])
        return time.perf_counter() - started

    for _ in range(2):  # warm both paths, discarded
        plain_block()
        analyze_block()
    gc.collect()
    gc.disable()
    try:
        plain_blocks: list[float] = []
        analyze_blocks: list[float] = []
        for pair in range(PAIRS // 2):
            if pair % 2 == 0:
                plain_blocks.append(plain_block())
                analyze_blocks.append(analyze_block())
            else:
                analyze_blocks.append(analyze_block())
                plain_blocks.append(plain_block())
    finally:
        gc.enable()
    return plain_blocks, analyze_blocks


def test_analyze_cost_is_per_statement_opt_in():
    """EXPLAIN ANALYZE may cost whatever it costs on the statement it
    wraps — the contract is only that the price is *opt-in*.  The loose
    backstop here (instrumented run < 10x plain) catches pathological
    regressions (e.g. accidental plan re-instrumentation per row, or
    clock reads escaping into the uninstrumented path) without turning
    a deliberate per-row timing feature into a flaky perf assertion."""
    plain_blocks, analyze_blocks = _measure_analyze()
    ratio = sum(analyze_blocks) / sum(plain_blocks)
    print(
        f"\nEXPLAIN ANALYZE cost: plain={sum(plain_blocks) * 1e3:.1f}ms "
        f"analyze={sum(analyze_blocks) * 1e3:.1f}ms ratio={ratio:.2f}x"
    )
    assert ratio < 10.0, f"EXPLAIN ANALYZE ratio {ratio:.2f}x exceeds 10x backstop"


if __name__ == "__main__":
    import json as _json
    import os as _os

    artifact = {"benchmark": "obs_overhead", "unit": "ratio", "legs": {}}
    for make_obs, label in (
        (lambda: Observability(metrics=False, tracing=False), "disabled"),
        (lambda: Observability(metrics=True, tracing=False), "metrics"),
        (lambda: Observability(), "metrics+tracing"),
        (lambda: _with_sampler(metrics=False, tracing=False),
         "sampler-disabled"),
        (lambda: _with_sampler(metrics=True, tracing=False),
         "sampler-metrics"),
    ):
        base_blocks, inst_blocks = measure(make_obs)
        paired, total, floor = _estimates(base_blocks, inst_blocks)
        print(
            f"{label}: baseline={sum(base_blocks) * 1e3:.2f}ms "
            f"instrumented={sum(inst_blocks) * 1e3:.2f}ms "
            f"paired={paired * 100:+.2f}% total={total * 100:+.2f}% "
            f"min-vs-min={floor * 100:+.2f}% "
            f"per-stmt={sum(base_blocks) / (PAIRS * BLOCK) * 1e6:.1f}us"
        )
        artifact["legs"][label] = {
            "baseline_ms": sum(base_blocks) * 1e3,
            "instrumented_ms": sum(inst_blocks) * 1e3,
            "paired_median": paired,
            "total_ratio": total,
            "min_vs_min": floor,
        }
    plain_blocks, analyze_blocks = _measure_analyze()
    print(
        f"explain-analyze: plain={sum(plain_blocks) * 1e3:.2f}ms "
        f"analyze={sum(analyze_blocks) * 1e3:.2f}ms "
        f"ratio={sum(analyze_blocks) / sum(plain_blocks):.2f}x"
    )
    artifact["legs"]["explain-analyze"] = {
        "baseline_ms": sum(plain_blocks) * 1e3,
        "instrumented_ms": sum(analyze_blocks) * 1e3,
        "total_ratio": sum(analyze_blocks) / sum(plain_blocks) - 1.0,
    }
    _os.makedirs("results", exist_ok=True)
    with open(_os.path.join("results", "obs_overhead.json"), "w") as sink:
        _json.dump(artifact, sink, indent=2)
    print("wrote results/obs_overhead.json")
