"""Table schema: an ordered set of columns plus constraints."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from ..errors import NotNullViolation, UnknownObjectError
from .column import Column
from .constraints import Check, Constraint, ForeignKey, PrimaryKey, Unique


@dataclass(frozen=True)
class TableSchema:
    """The logical definition of a table.

    Immutable: ALTER TABLE produces a new ``TableSchema`` (the heap
    rewrites rows as needed).  Column order is significant — positional
    INSERT uses it.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: PrimaryKey | None = None
    uniques: tuple[Unique, ...] = ()
    checks: tuple[Check, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise ValueError(f"duplicate column {column.name!r} in {self.name}")
            seen.add(column.name)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise UnknownObjectError(f"table {self.name} has no column {name!r}")

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise UnknownObjectError(f"table {self.name} has no column {name!r}")

    # ------------------------------------------------------------------
    # Row validation (type coercion + NOT NULL); uniqueness and checks
    # are enforced by the storage/executor layers which have row context.
    # ------------------------------------------------------------------
    def coerce_row(self, values: dict[str, Any]) -> tuple[Any, ...]:
        """Build a full storage tuple from a column->value mapping.

        Missing columns take their default (or NULL).  Unknown keys
        raise.  NOT NULL is enforced here because it needs no other
        rows.
        """
        unknown = set(values) - set(self.column_names)
        if unknown:
            raise UnknownObjectError(
                f"table {self.name} has no column(s) {sorted(unknown)!r}"
            )
        row: list[Any] = []
        pk_columns = set(self.primary_key.columns) if self.primary_key else set()
        for column in self.columns:
            if column.name in values:
                value = column.coerce(values[column.name])
            elif column.has_default:
                value = column.coerce(column.default)
            else:
                value = None
            if value is None and (column.not_null or column.name in pk_columns):
                raise NotNullViolation(
                    f"null value in column {column.name!r} of table "
                    f"{self.name} violates not-null constraint",
                    constraint=f"{self.name}_{column.name}_not_null",
                )
            row.append(value)
        return tuple(row)

    def row_to_dict(self, row: tuple[Any, ...]) -> dict[str, Any]:
        return dict(zip(self.column_names, row))

    # ------------------------------------------------------------------
    # Schema evolution helpers (used by ALTER TABLE)
    # ------------------------------------------------------------------
    def with_column(self, column: Column) -> "TableSchema":
        if self.has_column(column.name):
            raise ValueError(f"column {column.name!r} already exists")
        return replace(self, columns=self.columns + (column,))

    def without_column(self, name: str) -> "TableSchema":
        self.column(name)  # raises if absent
        remaining = tuple(c for c in self.columns if c.name != name)
        return replace(self, columns=remaining)

    def with_renamed_column(self, old: str, new: str) -> "TableSchema":
        if self.has_column(new):
            raise ValueError(f"column {new!r} already exists")
        columns = tuple(
            replace(c, name=new) if c.name == old else c for c in self.columns
        )
        if columns == self.columns:
            raise UnknownObjectError(f"table {self.name} has no column {old!r}")
        return replace(self, columns=columns)

    def with_name(self, name: str) -> "TableSchema":
        return replace(self, name=name)

    def with_constraint(self, constraint: Constraint) -> "TableSchema":
        if isinstance(constraint, PrimaryKey):
            if self.primary_key is not None:
                raise ValueError(f"table {self.name} already has a primary key")
            return replace(self, primary_key=constraint)
        if isinstance(constraint, Unique):
            return replace(self, uniques=self.uniques + (constraint,))
        if isinstance(constraint, Check):
            return replace(self, checks=self.checks + (constraint,))
        if isinstance(constraint, ForeignKey):
            return replace(self, foreign_keys=self.foreign_keys + (constraint,))
        raise TypeError(f"unknown constraint type {type(constraint).__name__}")

    def without_constraint(self, name: str) -> "TableSchema":
        if self.primary_key is not None and self.primary_key.name == name:
            return replace(self, primary_key=None)
        uniques = tuple(u for u in self.uniques if u.name != name)
        checks = tuple(c for c in self.checks if c.name != name)
        fks = tuple(f for f in self.foreign_keys if f.name != name)
        if (uniques, checks, fks) == (self.uniques, self.checks, self.foreign_keys):
            raise UnknownObjectError(
                f"table {self.name} has no constraint {name!r}"
            )
        return replace(self, uniques=uniques, checks=checks, foreign_keys=fks)

    def unique_column_sets(self) -> list[tuple[str, ...]]:
        """All column sets with a uniqueness guarantee (PK + UNIQUEs)."""
        sets: list[tuple[str, ...]] = []
        if self.primary_key is not None:
            sets.append(self.primary_key.columns)
        sets.extend(u.columns for u in self.uniques)
        return sets
