"""The lazy migration engine (paper sections 2 and 3).

``LazyMigrationEngine.submit`` performs the *logical* schema switch:
output tables are created empty, internal views record the mapping, the
old tables are retired (big flip), and a statement interceptor is
installed.  From then on every client statement that touches a new
table first runs the per-transaction migration loop of Algorithm 1 —
claiming granules through the bitmap (Algorithm 2) or hashmap
(Algorithm 3), migrating claimed data in separate transactions, and
re-checking skipped granules until the other workers' migrations commit
or abort.

Two duplicate-prevention modes are supported (section 3.7):

* ``ConflictMode.TRACKER`` — BullFrog's own lock/migrate tracking
  structures (the default);
* ``ConflictMode.ON_CONFLICT`` — no claims; rely on the output tables'
  unique indexes plus INSERT .. ON CONFLICT DO NOTHING, detecting
  duplicates at insert time at the cost of wasted work.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

from ..db import Database, Session, build_schema
from ..errors import (
    MigrationError,
    MigrationStateError,
    TransactionAborted,
    UnsupportedMigrationError,
)
from ..catalog import Column, TableSchema
from ..exec.expressions import RowLayout, compile_expr, predicate_satisfied
from ..exec.plan import ExecutionContext
from ..obs import Observability
from ..obs.tracectx import current as _trace_current
from ..sql import ast_nodes as ast
from ..sql.render import render_statement
from ..txn import IsolationLevel
from ..types import text_type
from .background import BackgroundConfig, BackgroundMigrator
from .bitmap import Claim, MigrationBitmap
from .classify import MigrationCategory, UnitPlan
from .constraints import (
    fk_parent_conjuncts,
    insert_conjuncts,
    update_unique_conjuncts,
)
from .faults import FaultInjector
from .granularity import GranuleMapper
from .hashmap import MigrationHashMap
from .migration import MigrationSpec, parse_migration
from .predicates import PredicateTransfer, Scope
from .stats import MigrationStats


class ConflictMode(Enum):
    TRACKER = "tracker"
    ON_CONFLICT = "on-conflict"


@dataclass
class _OutputRuntime:
    table: Any  # catalog Table
    column_names: tuple[str, ...]
    fns: list  # compiled projections over the combined anchor(+aux) layout


class UnitRuntime:
    """Everything needed to migrate one unit at run time."""

    def __init__(self, engine: "LazyMigrationEngine", plan: UnitPlan) -> None:
        self.engine = engine
        self.plan = plan
        self.catalog = engine.db.catalog
        self.anchor_table = self.catalog.table(plan.anchor)
        self.complete = False
        self.swept = False  # hashmap units: background finished a clean pass
        self._latch = threading.Lock()

        granule_size = engine.granule_size
        self.transfer = PredicateTransfer(
            plan, self.catalog, engine.db.planner, granule_size
        )
        if plan.category.uses_bitmap:
            self.mapper = GranuleMapper(self.anchor_table.heap, granule_size)
            self.tracker: MigrationBitmap | MigrationHashMap = MigrationBitmap(
                self.mapper.granule_count, partitions=engine.tracker_partitions
            )
        else:
            self.mapper = None
            self.tracker = MigrationHashMap(partitions=engine.tracker_partitions)

        self._compile_production()
        self._build_key_sql()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile_production(self) -> None:
        """Bitmap units: compile per-output projections over the anchor
        (plus aux-join) row layout for direct, TID-addressed production."""
        plan = self.plan
        if not plan.category.uses_bitmap:
            self.outputs_runtime: list[_OutputRuntime] = []
            return
        layout = RowLayout.for_table(
            plan.anchor_binding, self.anchor_table.schema.column_names
        )
        self.aux_table = None
        self._aux_positions: list[int] = []
        self._aux_index = None
        self._aux_lookup_positions: list[int] = []
        if plan.aux is not None:
            self.aux_table = self.catalog.table(plan.aux.table)
            aux_layout = RowLayout.for_table(
                plan.aux.binding, self.aux_table.schema.column_names
            )
            layout = layout.extend(aux_layout)
            anchor_schema = self.anchor_table.schema
            self._aux_positions = [
                anchor_schema.column_index(a) for a, _b in plan.aux.pairs
            ]
            aux_cols = tuple(b for _a, b in plan.aux.pairs)
            self._aux_index = self.aux_table.find_prefix_index(frozenset(aux_cols))
            if self._aux_index is not None:
                # Key order must follow the index's column order.
                by_aux = {b: a for a, b in plan.aux.pairs}
                self._aux_positions = [
                    anchor_schema.column_index(by_aux[c])
                    for c in self._aux_index.columns
                ]
            else:
                self._aux_lookup_positions = [
                    self.aux_table.schema.column_index(b) for _a, b in plan.aux.pairs
                ]
        self._layout = layout
        self._static_fn = (
            compile_expr(plan.static_filter, layout)
            if plan.static_filter is not None
            else None
        )
        self.outputs_runtime = []
        for output in plan.outputs:
            table = self.catalog.table(output.table)
            fns = [compile_expr(item, layout) for item in output.items]
            self.outputs_runtime.append(
                _OutputRuntime(table, output.column_names, fns)
            )

    def _build_key_sql(self) -> None:
        """Hashmap units: pre-render per-key INSERT..SELECT statements
        (the paper's rewritten migration DDL with injected predicates)."""
        self.key_sql: list[str] = []
        # Parallel list of the bare per-key SELECTs (no INSERT wrapper):
        # the invariant checker recomputes expected output rows from
        # them without mutating anything.
        self.key_select_sql: list[str] = []
        plan = self.plan
        if plan.category.uses_bitmap:
            return
        on_conflict = self.engine.conflict_mode is ConflictMode.ON_CONFLICT
        if plan.category is MigrationCategory.N_TO_ONE:
            key_refs = [
                ast.ColumnRef(c, plan.anchor_binding) for c in plan.group_columns
            ]
            sides = [key_refs]
        else:
            jk = plan.join_key
            assert jk is not None
            sides = [
                [ast.ColumnRef(c, plan.anchor_binding) for c in jk.anchor_columns],
                [ast.ColumnRef(c, jk.other_binding) for c in jk.other_columns],
            ]
        for output in plan.outputs:
            select = output.select
            where = select.where
            param_index = 0
            for side in sides:
                for ref in side:
                    clause = ast.BinaryOp("=", ref, ast.Param(param_index))
                    param_index += 1
                    where = (
                        clause if where is None else ast.BinaryOp("AND", where, clause)
                    )
            pinned = ast.Select(
                items=select.items,
                from_items=select.from_items,
                where=where,
                group_by=select.group_by,
                having=select.having,
                distinct=select.distinct,
            )
            insert = ast.Insert(
                table=output.table,
                columns=output.column_names,
                query=pinned,
                on_conflict_do_nothing=on_conflict,
            )
            self.key_sql.append(render_statement(insert))
            self.key_select_sql.append(render_statement(pinned))
        self._key_param_copies = len(sides)

    # ------------------------------------------------------------------
    # Production
    # ------------------------------------------------------------------
    def produce_bitmap_granules(
        self, granules: Sequence[int], session: Session
    ) -> int:
        """Materialize the output rows for claimed bitmap granules inside
        the session's open transaction.  Returns tuples produced."""
        assert self.mapper is not None
        ctx = session._context()
        ctx.params = ()
        executor = self.engine.db.executor
        on_conflict = self.engine.conflict_mode is ConflictMode.ON_CONFLICT
        produced = 0
        batches: list[list[dict]] = [[] for _ in self.outputs_runtime]
        for granule in granules:
            for _tid, row in self.mapper.tuples_in(granule):
                for combined in self._joined_rows(row):
                    if self._static_fn is not None and not predicate_satisfied(
                        self._static_fn(combined, ())
                    ):
                        continue
                    for position, output in enumerate(self.outputs_runtime):
                        values = {
                            name: fn(combined, ())
                            for name, fn in zip(output.column_names, output.fns)
                        }
                        batches[position].append(values)
                    produced += 1
        for output, batch in zip(self.outputs_runtime, batches):
            if batch:
                inserted = executor.insert_rows(
                    output.table, batch, ctx, on_conflict_skip=on_conflict
                )
                if on_conflict and inserted < len(batch):
                    self.engine.stats.add_duplicates(len(batch) - inserted)
        return produced

    def _joined_rows(self, row: tuple):
        """Anchor row extended by its aux (PK-side) match, inner-join
        semantics: rows without a match produce nothing but are still
        considered migrated (section 3.6)."""
        if self.plan.aux is None:
            yield row
            return
        key = tuple(row[p] for p in self._aux_positions)
        if self._aux_index is not None:
            for tid in self._aux_index.lookup(key):
                aux_row = self.aux_table.heap.read(tid)
                if aux_row is not None:
                    yield row + aux_row
            return
        for _tid, aux_row in self.aux_table.heap.scan():
            if tuple(aux_row[p] for p in self._aux_lookup_positions) == key:
                yield row + aux_row

    def produce_keys(self, keys: Sequence[tuple], session: Session) -> int:
        """Materialize output rows for claimed group keys by running the
        pre-rendered INSERT..SELECT with the key bound as parameters."""
        produced = 0
        for key in keys:
            params = tuple(key) * self._key_param_copies
            for sql in self.key_sql:
                result = session.execute(sql, params)
                produced += result.rowcount
        return produced

    # ------------------------------------------------------------------
    # Snapshot-overlay projection (read-only production)
    # ------------------------------------------------------------------
    def project_granules(
        self, granules: Sequence[int], snapshot_ts: int
    ) -> dict[str, list[tuple]]:
        """Read-only twin of :meth:`produce_bitmap_granules`: compute the
        output rows the given granules *would* produce, from the input
        tuple versions visible at ``snapshot_ts``.  Nothing is written,
        locked, or claimed — snapshot readers consume the result as an
        overlay instead of waiting for the granules to migrate."""
        assert self.mapper is not None
        rows_by_output: dict[str, list[tuple]] = {}
        for granule in granules:
            for _tid, row in self.mapper.tuples_in(
                granule, snapshot_ts=snapshot_ts
            ):
                for combined in self._joined_rows(row):
                    if self._static_fn is not None and not predicate_satisfied(
                        self._static_fn(combined, ())
                    ):
                        continue
                    for output in self.outputs_runtime:
                        values = {
                            name: fn(combined, ())
                            for name, fn in zip(output.column_names, output.fns)
                        }
                        rows_by_output.setdefault(
                            output.table.schema.name, []
                        ).append(output.table.schema.coerce_row(values))
        return rows_by_output

    def project_keys(
        self, keys: Sequence[tuple], session: Session
    ) -> dict[str, list[tuple]]:
        """Hashmap twin of :meth:`project_granules`: run the bare per-key
        SELECTs (no INSERT wrapper) on an internal session.  Input tables
        are retired and immutable under the big flip, so their current
        heads equal the pre-migration image at any snapshot."""
        rows_by_output: dict[str, list[tuple]] = {}
        for key in keys:
            params = tuple(key) * self._key_param_copies
            for output, sql in zip(self.plan.outputs, self.key_select_sql):
                result = session.execute(sql, params)
                if not result.rows:
                    continue
                schema = self.catalog.table(output.table).schema
                rows_by_output.setdefault(output.table, []).extend(
                    schema.coerce_row(dict(zip(output.column_names, row)))
                    for row in result.rows
                )
        return rows_by_output

    # ------------------------------------------------------------------
    # Key enumeration (full scope / background)
    # ------------------------------------------------------------------
    def key_positions(self) -> list[int]:
        plan = self.plan
        columns = (
            plan.group_columns
            if plan.category is MigrationCategory.N_TO_ONE
            else plan.join_key.anchor_columns  # type: ignore[union-attr]
        )
        schema = self.anchor_table.schema
        return [schema.column_index(c) for c in columns]

    def all_keys(self) -> set[tuple]:
        positions = self.key_positions()
        return {
            tuple(row[p] for p in positions)
            for _tid, row in self.anchor_table.heap.scan()
        }

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def check_complete(self) -> bool:
        if self.complete:
            return True
        if self.plan.category.uses_bitmap:
            assert isinstance(self.tracker, MigrationBitmap)
            if self.tracker.all_migrated:
                with self._latch:
                    self.complete = True
        else:
            if self.swept:
                with self._latch:
                    self.complete = True
        return self.complete

    def progress(self) -> dict[str, Any]:
        info: dict[str, Any] = {
            "unit": self.plan.unit_id,
            "category": self.plan.category.value,
            "complete": self.complete,
            "migrated": self.tracker.migrated_count,
        }
        if isinstance(self.tracker, MigrationBitmap):
            info["total"] = self.tracker.size
            if self.tracker.size:
                info["fraction"] = min(
                    1.0, info["migrated"] / self.tracker.size
                )
        return info


class LazyMigrationEngine:
    """BullFrog's lazy, request-driven migration engine."""

    def __init__(
        self,
        db: Database,
        granule_size: int = 1,
        tracker_partitions: int = 16,
        conflict_mode: ConflictMode = ConflictMode.TRACKER,
        background: BackgroundConfig | None = None,
        skip_wait_timeout: float = 30.0,
        big_flip: bool = True,
        tracking_enabled: bool = True,
        fkpk_join_mode: str = "fkit-bitmap",
        faults: FaultInjector | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.db = db
        # Fault injection (repro.core.faults).  ``None`` in production:
        # every injection point is a single ``is not None`` check.
        self.faults = faults
        # Observability (repro.obs): same zero-cost-when-detached
        # contract as faults; defaults to whatever the database carries
        # so attaching once at the Database covers the engine too.
        self.obs = obs if obs is not None else getattr(db, "obs", None)
        self.granule_size = granule_size
        self.tracker_partitions = tracker_partitions
        self.conflict_mode = conflict_mode
        # tracking_enabled=False removes the claim/latch protocol and
        # keeps only completion bookkeeping — the paper's section 4.4.1
        # "no bitmap" variant, valid only when accesses are disjoint.
        self.tracking_enabled = tracking_enabled
        self.fkpk_join_mode = fkpk_join_mode
        self.background_config = background or BackgroundConfig()
        self.skip_wait_timeout = skip_wait_timeout
        self.big_flip = big_flip
        self.spec: MigrationSpec | None = None
        self.units: list[UnitRuntime] = []
        self.stats = MigrationStats(
            registry=self.obs.registry if self.obs is not None else None
        )
        self._background: BackgroundMigrator | None = None
        self._complete_event = threading.Event()
        self._outputs_to_units: dict[str, UnitRuntime] = {}
        # MVCC garbage collection: total tuple versions unlinked from
        # the version chains of this migration's input/output heaps.
        self._versions_pruned = 0
        self._pruned_latch = threading.Lock()
        # Self-register for introspection: the bullfrog_stat_migrations
        # system view iterates the database's engines.
        register = getattr(db, "register_migration_engine", None)
        if register is not None:
            register(self)

    # ==================================================================
    # Submission: the logical switch (section 2.1)
    # ==================================================================
    def submit(
        self, migration_id: str, ddl: str, resume: bool = False
    ) -> "MigrationHandle":
        """Register the migration and perform the logical switch.

        ``resume=True`` attaches to output tables/views that already
        exist — the crash-recovery path (section 3.5): after REDO data
        replay re-creates outputs with their pre-crash contents, the
        migration is re-submitted with ``resume=True`` and the trackers
        restored via :func:`repro.core.recovery.rebuild_trackers`.
        """
        if self.spec is not None:
            raise MigrationStateError(
                "a migration is already registered on this engine"
            )
        spec = parse_migration(
            migration_id, ddl, self.db.catalog, self.fkpk_join_mode
        )
        session = self.db.connect()
        session.internal = True

        # 1. Create the output tables, empty.
        for unit in spec.units:
            for output in unit.outputs:
                if resume and self.db.catalog.has_table(output.table):
                    continue
                schema_stmt = spec.explicit_schemas.get(output.table)
                if schema_stmt is not None:
                    schema = build_schema(schema_stmt)
                    self.db.catalog.create_table(schema)
                else:
                    planned = self.db.planner.plan_select(output.select)
                    name_to_type = dict(zip(planned.names, planned.types))
                    columns = tuple(
                        Column(name, name_to_type.get(name) or text_type())
                        for name in output.column_names
                    )
                    self.db.catalog.create_table(
                        TableSchema(name=output.table, columns=columns)
                    )
        # 2. Secondary indexes on outputs.
        for index_stmt in spec.index_statements:
            if resume and any(
                index_stmt.name in t.indexes for t in self.db.catalog.tables()
            ):
                continue
            self.db.catalog.create_index(
                index_stmt.name,
                index_stmt.table,
                index_stmt.columns,
                unique=index_stmt.unique,
                ordered=True,
            )
        # 3. Internal views recording the mapping (the paper's
        #    FLEWONINFO_VIEW): used by tooling/EXPLAIN; the predicate
        #    transfer machinery works from the same SELECTs.
        for unit in spec.units:
            for output in unit.outputs:
                view_name = f"{output.table}_bullfrog_view"
                if resume and self.db.catalog.has_view(view_name):
                    continue
                self.db.catalog.create_view(
                    view_name, output.select, internal=True
                )

        # 4. Build runtime state (trackers, compiled projections).
        self.units = [UnitRuntime(self, unit) for unit in spec.units]
        for runtime in self.units:
            if isinstance(runtime.tracker, MigrationBitmap):
                self.stats.granules_total = (
                    self.stats.granules_total or 0
                ) + runtime.tracker.size
            for output in runtime.plan.output_tables:
                self._outputs_to_units[output] = runtime
        if self.conflict_mode is ConflictMode.ON_CONFLICT:
            self._require_unique_outputs()

        # 5. Big flip: retire the old tables; subsequent requests against
        #    them are rejected (section 2.1).
        if self.big_flip:
            for table_name in spec.input_tables:
                self.db.catalog.retire_table(table_name)
        self.db.bump_epoch()

        # 6. Intercept client statements from now on.
        self.spec = spec
        self.db.set_statement_interceptor(self._intercept)
        self.stats.mark_started()
        if self.obs is not None:
            self.obs.emit("migrate.submit", resume=resume, **spec.summary())

        # 7. Background migration threads (section 2.2), after a delay.
        if self.background_config.enabled:
            self._background = BackgroundMigrator(self, self.background_config)
            self._background.start()
        return MigrationHandle(self)

    def _require_unique_outputs(self) -> None:
        for runtime in self.units:
            for output in runtime.plan.outputs:
                table = self.db.catalog.table(output.table)
                if not table.schema.unique_column_sets():
                    raise UnsupportedMigrationError(
                        f"ON CONFLICT mode requires a unique constraint on "
                        f"output table {output.table!r} (section 3.7)"
                    )

    # ==================================================================
    # Interception (section 2.1) — migrate, then let the request run
    # ==================================================================
    def _intercept(
        self,
        session: Session,
        stmt: ast.Statement,
        params: Sequence[Any],
        sql_text: str | None = None,
    ) -> None:
        if self._complete_event.is_set():
            return
        if (
            isinstance(stmt, ast.Select)
            and self.tracking_enabled
            and self.conflict_mode is ConflictMode.TRACKER
        ):
            # Snapshot readers never wait on migration: instead of
            # migrating the statement's scope synchronously, pin a
            # snapshot timestamp and serve not-yet-visibly-migrated
            # granules from a pre-migration overlay.  DML still takes
            # the synchronous path below — writes must target the real
            # output rows under 2PL.
            snapshot_ts = self._snapshot_ts_for(session)
            if snapshot_ts is not None:
                self._prepare_snapshot_read(
                    session, stmt, params, snapshot_ts, sql_text
                )
                return
        referenced = _referenced_tables(stmt)
        fk_targets: set[str] = set()
        if isinstance(stmt, ast.Insert) and self.db.catalog.has_table(stmt.table):
            # An INSERT into a non-migrated table whose FK references an
            # output table still forces parent migration (section 2.1).
            for fk in self.db.catalog.table(stmt.table).schema.foreign_keys:
                fk_targets.add(fk.ref_table)
        for runtime in self.units:
            if runtime.complete:
                continue
            outputs = set(runtime.plan.output_tables)
            if not ((referenced | fk_targets) & outputs):
                continue
            scope = self._scope_for(runtime, stmt, params, sql_text)
            if not scope.is_empty:
                self.migrate_scope(runtime, scope)
        self._check_completion()

    # ------------------------------------------------------------------
    # Snapshot reads during migration (never block on in-flight granules)
    # ------------------------------------------------------------------
    def _snapshot_ts_for(self, session: Session) -> int | None:
        """The snapshot timestamp this statement will read at, or None
        if it runs under plain read-committed 2PL."""
        txn = session._txn
        if txn is not None:
            return txn.snapshot_ts  # None for read-committed txns
        if session.effective_isolation is IsolationLevel.SNAPSHOT:
            return self.db.txns.current_ts()
        return None

    @staticmethod
    def _visibly_migrated(tracker, granule, snapshot_ts: int) -> bool:
        """Whether the granule's output rows are visible at the snapshot.

        The claiming transaction's stamp (recorded at claim time) is
        authoritative: committed at ``ts <= snapshot_ts`` means the
        output table already serves this granule at the snapshot — even
        inside the commit-to-mark_migrated window.  A granule migrated
        without a stamp (recovery rebuild, pre-MVCC trackers) replayed
        under the bootstrap stamp and is visible to every snapshot."""
        stamp = tracker.stamp_of(granule)
        if stamp is not None:
            ts = getattr(stamp, "ts", None)
            return (
                ts is not None
                and not getattr(stamp, "aborted", False)
                and ts <= snapshot_ts
            )
        return tracker.is_migrated(granule)

    def _prepare_snapshot_read(
        self,
        session: Session,
        stmt: ast.Select,
        params: Sequence[Any],
        snapshot_ts: int,
        sql_text: str | None = None,
    ) -> None:
        """Build the pre-migration overlay for a snapshot SELECT.

        The timestamp is pinned *before* checking migration visibility:
        a migration committing afterwards gets a later timestamp, so its
        output rows are invisible at this snapshot and the overlay rows
        (projected from input versions visible at the snapshot) cannot
        double-count with them."""
        referenced = _referenced_tables(stmt)
        overlay: dict[str, list[tuple]] = {}
        project_session: Session | None = None
        for runtime in self.units:
            if runtime.complete:
                continue
            if not (referenced & set(runtime.plan.output_tables)):
                continue
            scope = self._scope_for(runtime, stmt, params, sql_text)
            if scope.is_empty:
                continue
            tracker = runtime.tracker
            if runtime.plan.category.uses_bitmap:
                assert isinstance(tracker, MigrationBitmap)
                source: Sequence = (
                    range(tracker.size) if scope.full else sorted(scope.granules)
                )
                pending = [
                    g
                    for g in source
                    if not self._visibly_migrated(tracker, g, snapshot_ts)
                ]
                if not pending:
                    continue
                produced = runtime.project_granules(pending, snapshot_ts)
            else:
                source = (
                    sorted(runtime.all_keys())
                    if scope.full
                    else sorted(scope.keys)
                )
                pending = [
                    k
                    for k in source
                    if not self._visibly_migrated(tracker, k, snapshot_ts)
                ]
                if not pending:
                    continue
                if project_session is None:
                    project_session = self.db.connect(allow_retired=True)
                    project_session.internal = True
                produced = runtime.project_keys(pending, project_session)
            for name, rows in produced.items():
                overlay.setdefault(name, []).extend(rows)
        if session._txn is None:
            # Autocommit: the implicit transaction must read at the very
            # timestamp the overlay was computed against.
            session._pending_snapshot_ts = snapshot_ts
        session._pending_overlay = overlay or None
        if self.obs is not None and self.obs.active and overlay:
            self.obs.emit(
                "migrate.snapshot_overlay",
                snapshot_ts=snapshot_ts,
                tables=len(overlay),
                rows=sum(len(r) for r in overlay.values()),
            )

    def _scope_for(
        self,
        runtime: UnitRuntime,
        stmt: ast.Statement,
        params: Sequence[Any],
        sql_text: str | None = None,
    ) -> Scope:
        if isinstance(stmt, ast.Insert):
            table = self.db.catalog.table(stmt.table)
            conjuncts = insert_conjuncts(table, stmt, params)
            conjuncts += fk_parent_conjuncts(
                table, stmt, params, set(self._outputs_to_units)
            )
            mine = [
                (t, c) for t, c in conjuncts if t in runtime.plan.output_tables
            ]
            if not mine:
                return Scope()  # plain INSERT: no prior migration needed
            return runtime.transfer.scope_for_output_conjuncts(mine, params)
        scope = runtime.transfer.scope_for_statement(
            stmt, params, cache_key=sql_text
        )
        if isinstance(stmt, ast.Update):
            table = self.db.catalog.table(stmt.table)
            extra = update_unique_conjuncts(table, stmt, params)
            mine = [(t, c) for t, c in extra if t in runtime.plan.output_tables]
            if mine:
                extra_scope = runtime.transfer.scope_for_output_conjuncts(
                    mine, params
                )
                scope = _merge_scopes(scope, extra_scope)
        return scope

    # ==================================================================
    # Algorithm 1: the per-transaction migration loop
    # ==================================================================
    def migrate_scope(
        self,
        runtime: UnitRuntime,
        scope: Scope,
        wait_for_skipped: bool = True,
    ) -> None:
        if runtime.complete or scope.is_empty:
            return
        if runtime.plan.category.uses_bitmap:
            if scope.full:
                assert isinstance(runtime.tracker, MigrationBitmap)
                pending: list = list(
                    runtime.tracker.iter_unmigrated()
                )
            else:
                pending = sorted(scope.granules)
            self._run_migration_loop(
                runtime, pending, is_bitmap=True, wait=wait_for_skipped
            )
        else:
            if scope.full:
                pending = sorted(runtime.all_keys())
            else:
                pending = sorted(scope.keys)
            self._run_migration_loop(
                runtime, pending, is_bitmap=False, wait=wait_for_skipped
            )
        runtime.check_complete()

    def _run_migration_loop(
        self,
        runtime: UnitRuntime,
        pending: list,
        is_bitmap: bool,
        wait: bool,
    ) -> None:
        """Algorithm 1: claim → migrate in a separate transaction → mark
        migrated → loop over SKIP until drained."""
        if self.conflict_mode is ConflictMode.ON_CONFLICT or not self.tracking_enabled:
            self._run_unclaimed(runtime, pending, is_bitmap)
            return
        tracker = runtime.tracker
        faults = self.faults
        obs = self.obs
        if obs is not None and not obs.active:
            obs = None  # attached-but-disabled: skip the dispatches
        deadline = time.monotonic() + self.skip_wait_timeout
        wip_seen: set = set()
        skip_seen: set = set()
        while pending:
            if obs is not None:
                obs.inc_claim_round()
            if faults is not None and "migrate.before_claim" in faults.watching:
                faults.fire(
                    "migrate.before_claim",
                    unit=runtime.plan.unit_id,
                    pending=len(pending),
                )
            wip: list = []
            skip: list = []
            for granule in pending:
                if is_bitmap:
                    claim = tracker.try_begin(granule)  # Algorithm 2
                else:
                    claim = tracker.try_begin(granule, wip_seen, skip_seen)  # Alg. 3
                if claim is Claim.MIGRATE:
                    wip.append(granule)
                    wip_seen.add(granule)
                elif claim is Claim.SKIP:
                    skip.append(granule)
                    skip_seen.add(granule)
            if obs is not None and (wip or skip):
                # The instant is emitted only for rounds that found
                # work: the steady-state round (everything already
                # migrated) is the no-op hot loop the <5% tracing
                # budget prices, and an every-round instant was its
                # single largest line item.  The counter above stays
                # exact for all rounds.
                obs.trace_point(
                    "migrate.before_claim",
                    unit=runtime.plan.unit_id,
                    pending=len(pending),
                    wip=len(wip),
                    skip=len(skip),
                )
            if wip:
                self._migrate_wip(runtime, wip, is_bitmap)
                wip_seen.difference_update(wip)
                # Productive iteration: time spent migrating our own WIP
                # must not count against the skip-wait timeout, or large
                # batches spuriously time out on granules other workers
                # finish promptly.
                deadline = time.monotonic() + self.skip_wait_timeout
            if not skip or not wait:
                break
            # Re-check skipped granules in a fresh iteration: the other
            # worker either completes (DONE) or aborts (re-claimable).
            self.stats.add_skip_wait(len(skip))
            skip_seen.difference_update(skip)
            pending = skip
            if time.monotonic() > deadline:
                raise MigrationError(
                    f"timed out waiting for {len(skip)} granule(s) being "
                    f"migrated by other workers (unit {runtime.plan.unit_id})"
                )
            time.sleep(0.0002)

    def _migrate_wip(self, runtime: UnitRuntime, wip: list, is_bitmap: bool) -> None:
        """One migration transaction for this worker's WIP list.

        With observability attached the whole transaction becomes one
        ``migrate.wip`` span (claim batch -> produce -> commit -> mark),
        which is what makes foreground migration cost visible next to
        the background passes in the Chrome trace.
        """
        obs = self.obs
        if obs is None or not obs.active:
            self._migrate_wip_txn(runtime, wip, is_bitmap)
            return
        start = obs.span_start()
        produced: int | None = None
        try:
            produced = self._migrate_wip_txn(runtime, wip, is_bitmap)
        finally:
            obs.observe_wip(
                start,
                unit=runtime.plan.unit_id,
                wip=len(wip),
                produced=produced,
            )

    def _migrate_wip_txn(
        self, runtime: UnitRuntime, wip: list, is_bitmap: bool
    ) -> int:
        tracker = runtime.tracker
        faults = self.faults
        obs = self.obs
        if obs is not None and not obs.active:
            obs = None
        session = self.db.connect(allow_retired=True)
        session.internal = True
        session.begin()
        txn = session._txn
        assert txn is not None
        # Stamp the claims with this transaction's commit stamp *before*
        # producing: the instant the transaction commits (the shared
        # stamp gains a timestamp) the granules become visibly migrated
        # to later snapshots, closing the commit-to-mark_migrated window
        # for snapshot readers.
        tracker.set_stamps(wip, txn.stamp)
        if is_bitmap:
            def _undo_claims() -> None:
                tracker.reset(wip)
                tracker.clear_stamps(wip)
        else:
            def _undo_claims() -> None:
                tracker.mark_aborted(wip)
                tracker.clear_stamps(wip)
        txn.on_abort(_undo_claims)
        try:
            if is_bitmap:
                produced = runtime.produce_bitmap_granules(wip, session)
            else:
                produced = runtime.produce_keys(wip, session)
            if obs is not None:
                obs.emit(
                    "migrate.after_produce",
                    unit=runtime.plan.unit_id,
                    wip=len(wip),
                    produced=produced,
                )
            if faults is not None and "migrate.after_produce" in faults.watching:
                faults.fire(
                    "migrate.after_produce",
                    unit=runtime.plan.unit_id,
                    wip=len(wip),
                    produced=produced,
                )
            txn.record_migration(
                runtime.plan.unit_id, runtime.plan.anchor, tuple(wip)
            )
            session.commit()
        except TransactionAborted:
            # Usually the lock manager already aborted the txn
            # (wait-die) and the abort hook reset our claims.  But a
            # TransactionAborted from any other source (fault injection,
            # a conflict surfacing at commit) leaves the txn ACTIVE and
            # its locks held — roll back so nothing leaks.
            if session.in_transaction:
                session.rollback()
            self.stats.add_abort()
            raise
        except BaseException:
            if session.in_transaction:
                session.rollback()
            self.stats.add_abort()
            raise
        # The committed-but-untracked window: a crash between COMMIT and
        # mark_migrated leaves the migrate bits unset; recovery replays
        # the WAL's MIGRATE record to restore them (section 3.5).
        if obs is not None:
            obs.emit(
                "migrate.before_mark", unit=runtime.plan.unit_id, wip=len(wip)
            )
        if faults is not None and "migrate.before_mark" in faults.watching:
            faults.fire(
                "migrate.before_mark", unit=runtime.plan.unit_id, wip=len(wip)
            )
        tracker.mark_migrated(wip)  # Algorithm 1 lines 8-9
        self.stats.add(granules=len(wip), tuples=produced)
        ctx = _trace_current()
        if ctx is not None:
            # Foreground statement pulled this migration in: the work
            # lands in its slow-query record.
            ctx.note("granules", len(wip))
            ctx.note("tuples", produced)
        if obs is not None:
            obs.emit(
                "migrate.after_commit", unit=runtime.plan.unit_id, wip=len(wip)
            )
        if faults is not None and "migrate.after_commit" in faults.watching:
            faults.fire(
                "migrate.after_commit", unit=runtime.plan.unit_id, wip=len(wip)
            )
        return produced

    def _run_unclaimed(
        self, runtime: UnitRuntime, pending: list, is_bitmap: bool
    ) -> None:
        """Claim-free migration paths:

        * ON_CONFLICT mode (section 3.7): duplicates are detected by the
          output tables' unique indexes at insert time;
        * tracking-disabled mode (section 4.4.1): no duplicate
          prevention at all — valid only for disjoint access patterns.
        """
        tracker = runtime.tracker
        todo = [
            g
            for g in pending
            if not (
                tracker.is_migrated(g)
                if is_bitmap
                else runtime.tracker.is_migrated(g)  # type: ignore[union-attr]
            )
        ]
        if not todo:
            return
        faults = self.faults
        obs = self.obs
        if obs is not None and not obs.active:
            obs = None
        span_start = obs.span_start() if obs is not None else 0.0
        session = self.db.connect(allow_retired=True)
        session.internal = True
        session.begin()
        txn = session._txn
        assert txn is not None
        try:
            if is_bitmap:
                produced = runtime.produce_bitmap_granules(todo, session)
            else:
                produced = runtime.produce_keys(todo, session)
            if obs is not None:
                obs.emit(
                    "migrate.after_produce",
                    unit=runtime.plan.unit_id,
                    wip=len(todo),
                    produced=produced,
                )
            if faults is not None and "migrate.after_produce" in faults.watching:
                faults.fire(
                    "migrate.after_produce",
                    unit=runtime.plan.unit_id,
                    wip=len(todo),
                    produced=produced,
                )
            txn.record_migration(
                runtime.plan.unit_id, runtime.plan.anchor, tuple(todo)
            )
            session.commit()
        except BaseException:
            if session.in_transaction:
                session.rollback()
            self.stats.add_abort()
            raise
        # Completion bookkeeping only — there are no lock bits in this
        # mode, so mark directly.
        if obs is not None:
            obs.emit(
                "migrate.before_mark", unit=runtime.plan.unit_id, wip=len(todo)
            )
        if faults is not None and "migrate.before_mark" in faults.watching:
            faults.fire(
                "migrate.before_mark", unit=runtime.plan.unit_id, wip=len(todo)
            )
        tracker.mark_migrated(todo)
        self.stats.add(granules=len(todo), tuples=produced)
        ctx = _trace_current()
        if ctx is not None:
            ctx.note("granules", len(todo))
            ctx.note("tuples", produced)
        if obs is not None:
            obs.emit(
                "migrate.after_commit", unit=runtime.plan.unit_id, wip=len(todo)
            )
            obs.observe_wip(
                span_start,
                unit=runtime.plan.unit_id,
                wip=len(todo),
                produced=produced,
            )
        if faults is not None and "migrate.after_commit" in faults.watching:
            faults.fire(
                "migrate.after_commit", unit=runtime.plan.unit_id, wip=len(todo)
            )

    # ==================================================================
    # Completion
    # ==================================================================
    def _check_completion(self) -> None:
        if self._complete_event.is_set():
            return
        if all(runtime.check_complete() for runtime in self.units):
            self.finalize()

    def prune_versions(self) -> int:
        """MVCC garbage collection over this migration's heaps.

        Cuts version chains below the oldest snapshot any active
        transaction could still read (and unlinks aborted versions),
        on the input and output tables.  Safe to call at any time; run
        automatically at :meth:`finalize`.  Returns versions unlinked."""
        horizon = self.db.txns.oldest_snapshot_ts()
        tables: set[str] = set()
        if self.spec is not None:
            tables.update(self.spec.input_tables)
        for runtime in self.units:
            tables.update(runtime.plan.output_tables)
        pruned = 0
        for name in sorted(tables):
            if self.db.catalog.has_table(name):
                pruned += self.db.catalog.table(name).prune_versions(horizon)
        if pruned:
            with self._pruned_latch:
                self._versions_pruned += pruned
        return pruned

    @property
    def versions_pruned(self) -> int:
        with self._pruned_latch:
            return self._versions_pruned

    def finalize(self) -> None:
        if self._complete_event.is_set():
            return
        self.stats.mark_completed()
        self._complete_event.set()
        self.db.set_statement_interceptor(None)
        self.prune_versions()
        if self.obs is not None:
            snapshot = self.stats.snapshot()
            self.obs.emit(
                "migrate.complete",
                migration=self.spec.migration_id if self.spec else None,
                granules=snapshot["granules_migrated"],
                tuples=snapshot["tuples_migrated"],
                duration=self.stats.duration,
            )
        if self._background is not None:
            # stop() joins (bounded): finalize must not return while a
            # background pass is still mid-migrate_scope, or teardown /
            # drop_old_schema races the tail of the sweep.
            self._background.stop()

    @property
    def is_complete(self) -> bool:
        return self._complete_event.is_set()

    def await_completion(self, timeout: float | None = None) -> bool:
        return self._complete_event.wait(timeout)

    def shutdown(self) -> None:
        """Stop background threads and detach the interceptor without
        completing the migration (bench teardown / abandoning a run)."""
        if self._background is not None:
            self._background.stop()
        if self.db._interceptor == self._intercept:
            self.db.set_statement_interceptor(None)

    def drop_old_schema(self) -> None:
        """After completion the old tables can be deleted (section 2.2)."""
        if not self.is_complete:
            raise MigrationStateError("migration has not completed yet")
        assert self.spec is not None
        for table_name in self.spec.input_tables:
            self.db.catalog.drop_table(table_name, if_exists=True)
        self.db.bump_epoch()

    def progress(self) -> dict[str, Any]:
        snapshot = self.stats.snapshot()
        return {
            "migration": self.spec.migration_id if self.spec else None,
            "complete": self.is_complete,
            "granules_migrated": snapshot["granules_migrated"],
            "granules_total": snapshot["granules_total"],
            "tuples_migrated": snapshot["tuples_migrated"],
            "skip_waits": snapshot["skip_waits"],
            "aborts": snapshot["migration_txn_aborts"],
            "duplicates": snapshot["duplicate_attempts"],
            # Progress/ETA surface (PR 4): bitmap-derived completion
            # fraction, EWMA throughput, and estimated time remaining.
            "versions_pruned": self.versions_pruned,
            "fraction": 1.0 if self.is_complete else self.stats.progress_fraction(),
            "tuples_per_sec": self.stats.tuples_per_second(),
            "eta_seconds": self.stats.eta_seconds(),
            # Stall forensics (PR 9): how long since anything moved.
            # The health engine's migration_stalled rule and the flight
            # recorder's migrations.json both key off this.
            "last_advance_seconds": self.stats.last_advance_seconds(),
            "background_passes": (
                self._background.passes if self._background is not None else 0
            ),
            "units": [runtime.progress() for runtime in self.units],
        }


class MigrationHandle:
    """What :meth:`LazyMigrationEngine.submit` returns to the caller."""

    def __init__(self, engine: LazyMigrationEngine) -> None:
        self.engine = engine

    @property
    def is_complete(self) -> bool:
        return self.engine.is_complete

    def await_completion(self, timeout: float | None = None) -> bool:
        return self.engine.await_completion(timeout)

    def progress(self) -> dict[str, Any]:
        return self.engine.progress()

    @property
    def stats(self) -> MigrationStats:
        return self.engine.stats

    def drop_old_schema(self) -> None:
        self.engine.drop_old_schema()


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _referenced_tables(stmt: ast.Statement) -> set[str]:
    tables: set[str] = set()
    if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
        tables.add(stmt.table)
        if isinstance(stmt, ast.Insert) and stmt.query is not None:
            tables |= _select_tables(stmt.query)
    elif isinstance(stmt, ast.Select):
        tables |= _select_tables(stmt)
    return tables


def _select_tables(select: ast.Select) -> set[str]:
    tables: set[str] = set()

    def walk_item(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            tables.add(item.name)
        elif isinstance(item, ast.SubquerySource):
            tables.update(_select_tables(item.query))
        elif isinstance(item, ast.Join):
            walk_item(item.left)
            walk_item(item.right)

    for item in select.from_items:
        walk_item(item)
    return tables


def _merge_scopes(a: Scope, b: Scope) -> Scope:
    if a.full or b.full:
        return Scope(full=True)
    return Scope(
        granules=a.granules | b.granules,
        keys=a.keys | b.keys,
    )
