"""Eager migration baseline (paper section 4).

"In eager migration, the system immediately physically moves all data
stored under the old schema into tables in the new schema prior to
becoming available to client requests over the new schema."

Implementation: one transaction takes exclusive locks on every input
table, materializes every output with INSERT .. SELECT, then retires
the old tables.  Because every scan takes a table-level IS lock,
concurrent client transactions queue behind the X locks for the whole
migration — the downtime window the paper measures (throughput drops to
the transactions that touch none of the affected tables, e.g. TPC-C
StockLevel during the customer split).
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..db import Database
from ..errors import MigrationStateError
from ..sql import ast_nodes as ast
from ..sql.render import render_statement
from ..txn.locks import LockMode
from .migration import MigrationSpec, parse_migration
from .stats import MigrationStats
from ..catalog import Column, TableSchema
from ..db import build_schema
from ..types import text_type


class EagerMigration:
    """Blocking, single-transaction migration."""

    def __init__(self, db: Database, big_flip: bool = True) -> None:
        self.db = db
        self.big_flip = big_flip
        self.spec: MigrationSpec | None = None
        self.stats = MigrationStats()
        self._complete_event = threading.Event()

    def submit(self, migration_id: str, ddl: str) -> "EagerMigration":
        if self.spec is not None:
            raise MigrationStateError("this eager migration already ran")
        spec = parse_migration(migration_id, ddl, self.db.catalog)
        self.spec = spec
        self.stats.mark_started()

        session = self.db.connect()
        session.internal = True
        session.begin()
        txn = session._txn
        assert txn is not None
        try:
            # Exclusive locks on all inputs: every concurrent reader or
            # writer of these tables blocks until we commit.
            for table_name in spec.input_tables:
                txn.lock_table(table_name, LockMode.X)

            # Create outputs (empty) ...
            for unit in spec.units:
                for output in unit.outputs:
                    schema_stmt = spec.explicit_schemas.get(output.table)
                    if schema_stmt is not None:
                        self.db.catalog.create_table(build_schema(schema_stmt))
                    else:
                        planned = self.db.planner.plan_select(output.select)
                        name_to_type = dict(zip(planned.names, planned.types))
                        columns = tuple(
                            Column(name, name_to_type.get(name) or text_type())
                            for name in output.column_names
                        )
                        self.db.catalog.create_table(
                            TableSchema(name=output.table, columns=columns)
                        )
            for index_stmt in spec.index_statements:
                self.db.catalog.create_index(
                    index_stmt.name,
                    index_stmt.table,
                    index_stmt.columns,
                    unique=index_stmt.unique,
                    ordered=True,
                )
            self.db.bump_epoch()

            # ... and fill them in full.
            produced = 0
            for unit in spec.units:
                for output in unit.outputs:
                    insert = ast.Insert(
                        table=output.table,
                        columns=output.column_names,
                        query=output.select,
                    )
                    result = session.execute_statement(insert)
                    produced += result.rowcount
            self.stats.add(tuples=produced)

            # Big flip at the end: the new schema becomes the only one.
            if self.big_flip:
                for table_name in spec.input_tables:
                    self.db.catalog.retire_table(table_name)
            self.db.bump_epoch()
            session.commit()
        except BaseException:
            if session.in_transaction:
                session.rollback()
            raise
        self.stats.mark_completed()
        self._complete_event.set()
        return self

    @property
    def is_complete(self) -> bool:
        return self._complete_event.is_set()

    def await_completion(self, timeout: float | None = None) -> bool:
        return self._complete_event.wait(timeout)

    def progress(self) -> dict[str, Any]:
        return {
            "migration": self.spec.migration_id if self.spec else None,
            "complete": self.is_complete,
            "tuples_migrated": self.stats.tuples_migrated,
        }
