"""Tests for the TPC-C workload: loader invariants and transactions."""

from decimal import Decimal

import pytest

from repro.tpcc import (
    SCENARIOS,
    NURand,
    ScaleConfig,
    SchemaVariant,
    TpccClient,
    TRANSACTION_MIX,
    customer_last_name,
)


class TestLoaderInvariants:
    def test_row_counts(self, tpcc_db, tpcc_scale):
        s = tpcc_db.connect()
        expected_customers = (
            tpcc_scale.warehouses
            * tpcc_scale.districts_per_warehouse
            * tpcc_scale.customers_per_district
        )
        assert s.execute("SELECT COUNT(*) FROM warehouse").scalar() == tpcc_scale.warehouses
        assert (
            s.execute("SELECT COUNT(*) FROM district").scalar()
            == tpcc_scale.warehouses * tpcc_scale.districts_per_warehouse
        )
        assert s.execute("SELECT COUNT(*) FROM customer").scalar() == expected_customers
        assert s.execute("SELECT COUNT(*) FROM item").scalar() == tpcc_scale.items
        assert (
            s.execute("SELECT COUNT(*) FROM stock").scalar()
            == tpcc_scale.warehouses * tpcc_scale.items
        )

    def test_orders_and_lines_consistent(self, tpcc_db):
        s = tpcc_db.connect()
        line_counts = s.execute(
            "SELECT o_w_id, o_d_id, o_id, o_ol_cnt FROM orders"
        ).rows
        for w, d, o, declared in line_counts[:10]:
            actual = s.execute(
                "SELECT COUNT(*) FROM order_line "
                "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                [w, d, o],
            ).scalar()
            assert actual == declared

    def test_new_order_is_newest_third(self, tpcc_db, tpcc_scale):
        s = tpcc_db.connect()
        per_district = tpcc_scale.initial_orders_per_district // 3
        total = s.execute("SELECT COUNT(*) FROM new_order").scalar()
        districts = tpcc_scale.warehouses * tpcc_scale.districts_per_warehouse
        assert total == pytest.approx(per_district * districts, abs=districts)

    def test_next_o_id_matches_loaded_orders(self, tpcc_db, tpcc_scale):
        s = tpcc_db.connect()
        rows = s.execute("SELECT d_next_o_id FROM district").rows
        assert all(
            r[0] == tpcc_scale.initial_orders_per_district + 1 for r in rows
        )

    def test_undelivered_orders_have_no_carrier(self, tpcc_db):
        s = tpcc_db.connect()
        missing = s.execute(
            "SELECT COUNT(*) FROM orders, new_order "
            "WHERE o_w_id = no_w_id AND o_d_id = no_d_id AND o_id = no_o_id "
            "AND o_carrier_id IS NOT NULL"
        ).scalar()
        assert missing == 0

    def test_deterministic_by_seed(self):
        from repro import Database
        from repro.tpcc import create_schema, load_tpcc

        scale = ScaleConfig.small()
        totals = []
        for _ in range(2):
            db = Database()
            s = db.connect()
            create_schema(s)
            load_tpcc(db, scale)
            totals.append(
                s.execute("SELECT SUM(ol_amount) FROM order_line").scalar()
            )
        assert totals[0] == totals[1]


class TestHelpers:
    def test_last_name_syllables(self):
        assert customer_last_name(0) == "BARBARBAR"
        assert customer_last_name(999) == "EINGEINGEING"
        assert customer_last_name(371) == "PRICALLYOUGHT"

    def test_nurand_in_range(self):
        import random

        nurand = NURand(random.Random(1))
        for _ in range(500):
            assert 1 <= nurand.customer_id(3000) <= 3000
            assert 1 <= nurand.item_id(100000) <= 100000
            assert 0 <= nurand.last_name_number() <= 999

    def test_mix_weights(self):
        assert dict(TRANSACTION_MIX) == {
            "new_order": 45,
            "payment": 43,
            "delivery": 4,
            "order_status": 4,
            "stock_level": 4,
        }

    def test_pick_transaction_distribution(self, tpcc_db, tpcc_scale):
        client = TpccClient(tpcc_db, tpcc_scale, seed=1)
        picks = [client.pick_transaction() for _ in range(2000)]
        assert 0.35 < picks.count("new_order") / 2000 < 0.55
        assert 0.33 < picks.count("payment") / 2000 < 0.53


class TestTransactionsBase:
    def test_new_order_advances_district_and_inserts(self, tpcc_db, tpcc_scale):
        s = tpcc_db.connect()
        client = TpccClient(tpcc_db, tpcc_scale, seed=3, rollback_rate=0.0)
        orders_before = s.execute("SELECT COUNT(*) FROM orders").scalar()
        next_before = s.execute(
            "SELECT SUM(d_next_o_id) FROM district"
        ).scalar()
        assert client.run("new_order")
        assert s.execute("SELECT COUNT(*) FROM orders").scalar() == orders_before + 1
        assert s.execute(
            "SELECT SUM(d_next_o_id) FROM district"
        ).scalar() == next_before + 1

    def test_new_order_rollback_rate(self, tpcc_db, tpcc_scale):
        s = tpcc_db.connect()
        client = TpccClient(tpcc_db, tpcc_scale, seed=3, rollback_rate=1.0)
        orders_before = s.execute("SELECT COUNT(*) FROM orders").scalar()
        assert client.run("new_order")  # rollback is still a "success"
        assert s.execute("SELECT COUNT(*) FROM orders").scalar() == orders_before

    def test_payment_moves_money(self, tpcc_db, tpcc_scale):
        s = tpcc_db.connect()
        client = TpccClient(tpcc_db, tpcc_scale, seed=5)
        ytd_before = s.execute("SELECT SUM(w_ytd) FROM warehouse").scalar()
        history_before = s.execute("SELECT COUNT(*) FROM history").scalar()
        assert client.run("payment")
        assert s.execute("SELECT SUM(w_ytd) FROM warehouse").scalar() > ytd_before
        assert s.execute("SELECT COUNT(*) FROM history").scalar() == history_before + 1

    def test_delivery_clears_new_orders(self, tpcc_db, tpcc_scale):
        s = tpcc_db.connect()
        client = TpccClient(tpcc_db, tpcc_scale, seed=7)
        before = s.execute("SELECT COUNT(*) FROM new_order").scalar()
        assert client.run("delivery")
        after = s.execute("SELECT COUNT(*) FROM new_order").scalar()
        assert after == before - tpcc_scale.districts_per_warehouse

    def test_delivery_sets_carrier_and_balance(self, tpcc_db, tpcc_scale):
        s = tpcc_db.connect()
        client = TpccClient(tpcc_db, tpcc_scale, seed=7)
        oldest = s.execute(
            "SELECT no_o_id FROM new_order WHERE no_w_id = 1 AND no_d_id = 1 "
            "ORDER BY no_o_id LIMIT 1"
        ).scalar()
        assert client.run("delivery")
        carrier = s.execute(
            "SELECT o_carrier_id FROM orders "
            "WHERE o_w_id = 1 AND o_d_id = 1 AND o_id = ?",
            [oldest],
        ).scalar()
        assert carrier is not None

    def test_order_status_and_stock_level_run(self, tpcc_db, tpcc_scale):
        client = TpccClient(tpcc_db, tpcc_scale, seed=11)
        assert client.run("order_status")
        assert client.run("stock_level")

    def test_many_random_transactions(self, tpcc_db, tpcc_scale):
        client = TpccClient(tpcc_db, tpcc_scale, seed=13)
        for _ in range(120):
            name, ok = client.run_random()
            assert ok, name

    def test_hot_customers_restricts_ids(self, tpcc_db, tpcc_scale):
        client = TpccClient(tpcc_db, tpcc_scale, seed=17, hot_customers=3)
        assert all(client._customer() <= 3 for _ in range(100))


class TestTransactionsAfterMigrations:
    @pytest.mark.parametrize("scenario", ["split", "aggregate", "join"])
    def test_variant_transactions_run_post_migration(
        self, tpcc_db, tpcc_scale, scenario
    ):
        from repro.core import BackgroundConfig, MigrationController, Strategy

        config = SCENARIOS[scenario]
        controller = MigrationController(tpcc_db)
        handle = controller.submit(
            scenario,
            config["ddl"],
            strategy=Strategy.LAZY,
            background=BackgroundConfig(delay=0.05, chunk=256, interval=0.0),
            big_flip=config["big_flip"],
        )
        assert handle.await_completion(timeout=60)
        client = TpccClient(
            tpcc_db, tpcc_scale, variant=config["variant"], seed=19
        )
        for _ in range(60):
            name, ok = client.run_random()
            assert ok, (scenario, name)

    def test_aggregate_totals_consistent_with_lines(self, tpcc_db, tpcc_scale):
        from repro.core import BackgroundConfig, MigrationController, Strategy

        config = SCENARIOS["aggregate"]
        controller = MigrationController(tpcc_db)
        handle = controller.submit(
            "aggregate",
            config["ddl"],
            strategy=Strategy.LAZY,
            background=BackgroundConfig(delay=0.05, chunk=256, interval=0.0),
            big_flip=False,
        )
        assert handle.await_completion(timeout=60)
        client = TpccClient(
            tpcc_db, tpcc_scale, variant=SchemaVariant.AGGREGATE, seed=23,
            rollback_rate=0.0,
        )
        for _ in range(40):
            client.run_random()
        s = tpcc_db.connect()
        rows = s.execute("SELECT ol_w_id, ol_d_id, ol_o_id, ol_total FROM order_totals").rows
        for w, d, o, total in rows[:25]:
            actual = s.execute(
                "SELECT SUM(ol_amount) FROM order_line "
                "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                [w, d, o],
            ).scalar()
            assert actual == total, (w, d, o)
