"""Planner tests: plan shapes, index selection, pushdown, EXPLAIN."""

import pytest

from repro import Database
from repro.exec.rewrite import (
    EquivalenceClasses,
    bind_params,
    conjoin,
    derive_equivalent_predicates,
    expand_views,
    split_conjuncts,
)
from repro.sql import ast_nodes as ast
from repro.sql import parse_expression, parse_statement
from repro.sql.render import render_expr


@pytest.fixture
def s(db):
    session = db.connect()
    session.execute(
        "CREATE TABLE t (a INT PRIMARY KEY, b INT, c VARCHAR(10))"
    )
    session.execute("CREATE TABLE u (x INT PRIMARY KEY, y INT)")
    session.execute("CREATE INDEX t_bc ON t (b, c)")
    for i in range(20):
        session.execute(
            "INSERT INTO t VALUES (?, ?, ?)", [i, i % 5, f"v{i % 3}"]
        )
        session.execute("INSERT INTO u VALUES (?, ?)", [i, i * 10])
    return session


class TestIndexSelection:
    def test_pk_point_lookup(self, s):
        plan = s.explain("SELECT * FROM t WHERE a = 5")
        assert "Index Scan using t_pkey" in plan

    def test_composite_index_full_key(self, s):
        plan = s.explain("SELECT * FROM t WHERE b = 1 AND c = 'v0'")
        assert "Index Scan using t_bc" in plan

    def test_ordered_index_prefix(self, s):
        plan = s.explain("SELECT * FROM t WHERE b = 1 AND a > 3")
        assert "Index Scan using t_bc" in plan
        assert "Filter" in plan  # residual a > 3

    def test_no_index_means_seq_scan(self, s):
        plan = s.explain("SELECT * FROM t WHERE c = 'v0'")
        assert "Seq Scan on t" in plan

    def test_param_keys_use_index(self, s):
        stmt = parse_statement("SELECT * FROM t WHERE a = ?")
        planned = s.db.planner.plan_select(stmt)
        assert "Index Scan using t_pkey" in planned.explain()

    def test_inequality_not_indexed(self, s):
        plan = s.explain("SELECT * FROM t WHERE a > 5")
        assert "Seq Scan" in plan

    def test_column_equals_column_not_an_index_key(self, s):
        plan = s.explain("SELECT * FROM t WHERE a = b")
        assert "Seq Scan" in plan


class TestJoinPlans:
    def test_equi_join_uses_hash_join(self, s):
        plan = s.explain("SELECT * FROM t, u WHERE t.a = u.x")
        assert "Hash Join" in plan

    def test_non_equi_join_uses_nested_loop(self, s):
        plan = s.explain("SELECT * FROM t, u WHERE t.a < u.x")
        assert "Nested Loop" in plan

    def test_pushdown_into_scans(self, s):
        plan = s.explain(
            "SELECT * FROM t, u WHERE t.a = u.x AND t.b = 1 AND u.y = 50"
        )
        # each single-table conjunct lands in its own scan
        assert plan.count("Index Scan") + plan.count("Seq Scan") == 2
        assert "u.y = 50" in plan or "(u.y = 50)" in plan

    def test_equivalence_class_derivation(self, s):
        """t.a = u.x AND t.a = 5 also pins u.x = 5."""
        plan = s.explain("SELECT * FROM t, u WHERE t.a = u.x AND t.a = 5")
        assert "Index Scan using u_pkey" in plan

    def test_result_correctness_with_derivation(self, s):
        result = s.execute(
            "SELECT u.y FROM t, u WHERE t.a = u.x AND t.a = 5"
        )
        assert result.rows == [(50,)]

    def test_three_way_join(self, s):
        s.execute("CREATE TABLE w (k INT PRIMARY KEY)")
        s.execute("INSERT INTO w VALUES (5)")
        result = s.execute(
            "SELECT t.a FROM t, u, w WHERE t.a = u.x AND u.x = w.k"
        )
        assert result.rows == [(5,)]


class TestRewriteHelpers:
    def test_split_and_conjoin(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        conjuncts = split_conjuncts(expr)
        assert len(conjuncts) == 3
        rejoined = conjoin(conjuncts)
        assert sorted(render_expr(c) for c in split_conjuncts(rejoined)) == sorted(
            render_expr(c) for c in conjuncts
        )

    def test_split_none(self):
        assert split_conjuncts(None) == []
        assert conjoin([]) is None

    def test_or_not_split(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert len(split_conjuncts(expr)) == 1

    def test_bind_params(self):
        expr = parse_expression("a = ? AND b > ?")
        bound = bind_params(expr, [5, "x"])
        assert render_expr(bound) == "((a = 5) AND (b > 'x'))"

    def test_equivalence_classes(self):
        conjuncts = split_conjuncts(
            parse_expression("a.x = b.y AND b.y = c.z")
        )
        classes = EquivalenceClasses.from_conjuncts(conjuncts)
        assert classes.equivalent("a.x", "c.z")
        assert not classes.equivalent("a.x", "q.q")

    def test_derive_equivalent_predicates(self):
        conjuncts = split_conjuncts(
            parse_expression("a.x = b.y AND a.x = 5")
        )
        classes = EquivalenceClasses.from_conjuncts(conjuncts)
        derived = derive_equivalent_predicates(conjuncts, classes)
        assert any(render_expr(d) == "(b.y = 5)" for d in derived)

    def test_derive_handles_function_predicates(self):
        conjuncts = split_conjuncts(
            parse_expression("a.x = b.y AND EXTRACT(DAY FROM a.x) = 9")
        )
        classes = EquivalenceClasses.from_conjuncts(conjuncts)
        derived = derive_equivalent_predicates(conjuncts, classes)
        assert any("b.y" in render_expr(d) for d in derived)

    def test_no_duplicate_derivation(self):
        conjuncts = split_conjuncts(
            parse_expression("a.x = b.y AND a.x = 5 AND b.y = 5")
        )
        classes = EquivalenceClasses.from_conjuncts(conjuncts)
        derived = derive_equivalent_predicates(conjuncts, classes)
        assert derived == []

    def test_expand_views_nested(self):
        inner = parse_statement("SELECT a FROM base")
        outer = parse_statement("SELECT * FROM v1")

        def lookup(name):
            return inner if name == "v1" else None

        expanded = expand_views(outer, lookup)
        sub = expanded.from_items[0]
        assert isinstance(sub, ast.SubquerySource)
        assert sub.alias == "v1"


class TestExplainShape:
    def test_paper_style_plan(self, s):
        """The section 2.1 EXPLAIN analogue: predicates pushed through a
        join, visible per-table."""
        s.execute("CREATE VIEW both AS SELECT t.a AS ta, u.y FROM t, u WHERE t.a = u.x")
        plan = s.explain("SELECT * FROM both WHERE ta = 5")
        assert "Subquery Scan" in plan

    def test_explain_rejects_dml(self, s):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            s.explain("DELETE FROM t")


class TestPaperExampleExplain:
    """The exact section 2.1 walk-through: the view predicate must reach
    BOTH base tables (FLIGHTID = 'AA101' as index conditions on flights
    and flewon) plus the EXTRACT filter on flewon."""

    @pytest.fixture
    def flights(self, db):
        s = db.connect()
        s.execute(
            "CREATE TABLE flights (flightid CHAR(6) PRIMARY KEY, capacity INT)"
        )
        s.execute(
            "CREATE TABLE flewon (flightid CHAR(6), flightdate DATE, "
            "passenger_count INT)"
        )
        s.execute("CREATE INDEX flewon_flightid_idx ON flewon (flightid)")
        s.execute(
            "CREATE VIEW flewoninfo_view AS SELECT f.flightid AS fid, "
            "flightdate, passenger_count, "
            "(capacity - passenger_count) AS empty_seats "
            "FROM flights f, flewon fi WHERE f.flightid = fi.flightid"
        )
        return s

    def test_predicates_reach_both_base_tables(self, flights):
        plan = flights.explain(
            "SELECT * FROM flewoninfo_view WHERE fid = 'AA101' "
            "AND EXTRACT(DAY FROM flightdate) = 9"
        )
        assert "Index Scan using flights_pkey" in plan
        assert "f.flightid = 'AA101'" in plan
        assert "Index Scan using flewon_flightid_idx" in plan
        assert "fi.flightid = 'AA101'" in plan
        assert "EXTRACT(DAY FROM fi.flightdate) = 9" in plan
        # No residual filter left above the subquery.
        assert "flewoninfo_view.fid" not in plan

    def test_pushed_plan_correct(self, flights):
        flights.execute("INSERT INTO flights VALUES ('AA101', 100)")
        flights.execute("INSERT INTO flights VALUES ('UA900', 80)")
        flights.execute("INSERT INTO flewon VALUES ('AA101', '2021-06-09', 42)")
        flights.execute("INSERT INTO flewon VALUES ('AA101', '2021-06-10', 50)")
        flights.execute("INSERT INTO flewon VALUES ('UA900', '2021-06-09', 9)")
        rows = flights.execute(
            "SELECT empty_seats FROM flewoninfo_view WHERE fid = 'AA101' "
            "AND EXTRACT(DAY FROM flightdate) = 9"
        ).rows
        assert rows == [(58,)]

    def test_aggregate_view_not_pushed_below_group_by(self, db):
        s = db.connect()
        s.execute("CREATE TABLE t (g INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.execute("INSERT INTO t VALUES (1, 20)")
        s.execute("INSERT INTO t VALUES (2, 5)")
        s.execute(
            "CREATE VIEW sums AS SELECT g, SUM(v) AS total FROM t GROUP BY g"
        )
        # Correctness: the HAVING-like filter applies to the aggregate
        # result, not the base rows.
        rows = s.execute("SELECT g FROM sums WHERE total = 30").rows
        assert rows == [(1,)]

    def test_limit_view_not_pushed(self, db):
        s = db.connect()
        s.execute("CREATE TABLE t (v INT)")
        for i in range(10):
            s.execute("INSERT INTO t VALUES (?)", [i])
        s.execute("CREATE VIEW first3 AS SELECT v FROM t ORDER BY v LIMIT 3")
        rows = s.execute("SELECT v FROM first3 WHERE v > 1").rows
        assert rows == [(2,)]  # filter above the limit, not below
