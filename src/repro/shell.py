"""A minimal interactive SQL shell: ``python -m repro``.

Useful for poking at the engine and demoing migrations by hand:

.. code-block:: text

    $ python -m repro
    repro> CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
    CREATE TABLE
    repro> INSERT INTO t VALUES (1, 'hello');
    INSERT 1
    repro> SELECT * FROM t;
     id | v
    ----+------
     1  | hello
    (1 row)

Meta-commands: ``\\dt`` lists tables, ``\\d <table>`` describes one,
``\\explain <select>`` shows the plan, ``\\migrate <id> <ddl>`` submits
a lazy migration, ``\\progress`` shows migration progress, ``\\q`` quits.
"""

from __future__ import annotations

import sys

from .core import BackgroundConfig, MigrationController, Strategy
from .db import Database, Result
from .errors import ReproError


def format_result(result: Result) -> str:
    if result.statement != "SELECT":
        if result.rowcount:
            return f"{result.statement} {result.rowcount}"
        return result.statement
    if not result.columns:
        return "(no columns)"
    widths = [
        max(len(str(column)), *(len(str(row[i])) for row in result.rows))
        if result.rows
        else len(str(column))
        for i, column in enumerate(result.columns)
    ]
    lines = [
        " | ".join(str(c).ljust(w) for c, w in zip(result.columns, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in result.rows:
        lines.append(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    plural = "row" if len(result.rows) == 1 else "rows"
    lines.append(f"({len(result.rows)} {plural})")
    return "\n".join(lines)


class Shell:
    def __init__(self) -> None:
        self.db = Database()
        self.session = self.db.connect()
        self.controller = MigrationController(self.db)

    def handle_meta(self, line: str) -> str | None:
        parts = line.split(None, 2)
        command = parts[0]
        if command == "\\q":
            raise EOFError
        if command == "\\dt":
            tables = [
                f"  {t.schema.name}{' (retired)' if t.retired else ''}"
                f"  [{len(t)} rows]"
                for t in self.db.catalog.tables()
            ]
            return "\n".join(tables) or "(no tables)"
        if command == "\\d" and len(parts) > 1:
            table = self.db.catalog.table(parts[1])
            lines = [
                f"  {c.name}  {c.type.render()}"
                + ("  NOT NULL" if c.not_null else "")
                for c in table.schema.columns
            ]
            if table.schema.primary_key:
                lines.append(
                    f"  PRIMARY KEY ({', '.join(table.schema.primary_key.columns)})"
                )
            for name in table.indexes:
                lines.append(f"  INDEX {name}")
            return "\n".join(lines)
        if command == "\\explain" and len(parts) > 1:
            return self.session.explain(line.split(None, 1)[1])
        if command == "\\migrate" and len(parts) > 2:
            handle = self.controller.submit(
                parts[1],
                parts[2],
                strategy=Strategy.LAZY,
                background=BackgroundConfig(delay=2.0),
            )
            return f"migration {parts[1]!r} submitted (new schema live)"
        if command == "\\progress":
            if self.controller.active is None:
                return "(no migration submitted)"
            return str(self.controller.active.progress())
        return f"unknown meta-command {command!r}"

    def run(self) -> int:
        print("repro shell — BullFrog reproduction.  \\q to quit.")
        buffer = ""
        while True:
            prompt = "repro> " if not buffer else "  ...> "
            try:
                line = input(prompt)
            except EOFError:
                print()
                return 0
            if not buffer and line.strip().startswith("\\"):
                try:
                    output = self.handle_meta(line.strip())
                except EOFError:
                    return 0
                except ReproError as exc:
                    output = f"error: {exc}"
                if output:
                    print(output)
                continue
            buffer += line + "\n"
            if not line.rstrip().endswith(";"):
                if line.strip():
                    continue
            statement = buffer.strip().rstrip(";")
            buffer = ""
            if not statement:
                continue
            try:
                print(format_result(self.session.execute(statement)))
            except ReproError as exc:
                print(f"error: {exc}")


def main() -> int:
    return Shell().run()


if __name__ == "__main__":
    sys.exit(main())
