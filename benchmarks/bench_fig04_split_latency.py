"""Figure 4: NewOrder latency CDFs during the table-split migration."""

from repro.bench.experiments import fig4_table_split_latency


def test_fig4_latency_cdfs(benchmark, profile, record_figure):
    result = benchmark.pedantic(
        fig4_table_split_latency,
        kwargs={
            "profile": profile,
            "systems": ("eager", "multistep", "bullfrog-tracker"),
            "rates": ("low",),
        },
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert all(samples for samples in result.cdfs.values())
