"""Exception hierarchy for the repro database engine and BullFrog core.

Every error raised by the public API derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the
layering of the system: SQL front end, catalog, execution, transactions,
and the migration subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL front end."""


class TokenizeError(SqlError):
    """The SQL text contains characters or literals that cannot be lexed."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """The SQL text is not valid for the supported grammar."""


class CatalogError(ReproError):
    """Base class for schema/catalog violations."""


class DuplicateObjectError(CatalogError):
    """A table, view, or index with the same name already exists."""


class UnknownObjectError(CatalogError):
    """A referenced table, view, column, or index does not exist."""


class SchemaVersionError(CatalogError):
    """A statement referenced a schema version that is no longer active.

    Raised for requests against the *old* schema after a big-flip
    migration has made the new schema the only active one (paper section
    2.1: "the old schema becomes inactive, and all subsequent requests
    that access it are rejected").
    """


class ExecutionError(ReproError):
    """Base class for runtime query-execution failures."""


class StorageError(ExecutionError):
    """The physical storage layer was asked to do something structurally
    impossible: update or double-delete a tombstoned tuple, overflow a
    page, or re-place an occupied slot during replay.  Reaching this from
    SQL indicates an engine bug, so it maps to an internal-error SQLSTATE
    (XX001) over the wire."""


class TypeError_(ExecutionError):
    """A value did not match the declared column type or an operator's
    expected operand types.  (Named with a trailing underscore to avoid
    shadowing the builtin.)"""


class ConstraintViolation(ExecutionError):
    """An integrity constraint was violated."""

    def __init__(self, message: str, constraint: str | None = None) -> None:
        super().__init__(message)
        self.constraint = constraint


class NotNullViolation(ConstraintViolation):
    """A NOT NULL column received a NULL value."""


class UniqueViolation(ConstraintViolation):
    """A PRIMARY KEY or UNIQUE constraint received a duplicate value."""


class CheckViolation(ConstraintViolation):
    """A CHECK constraint evaluated to false."""


class ForeignKeyViolation(ConstraintViolation):
    """A FOREIGN KEY constraint could not find its referenced row, or a
    referenced row was deleted while still referenced."""


class TransactionError(ReproError):
    """Base class for transaction-manager failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (explicitly or by the system) and can
    no longer be used."""


class DeadlockAvoided(TransactionAborted):
    """The lock manager killed this transaction under the wait-die policy
    to avoid a deadlock.  The client may retry."""


class LockTimeout(TransactionAborted):
    """A lock could not be acquired within the configured timeout."""


class SerializationFailure(TransactionAborted):
    """A snapshot-isolation transaction lost a write-write conflict: the
    tuple it tried to update was modified by a transaction that committed
    after this one's snapshot was taken (first-committer-wins, SQLSTATE
    40001).  The client may retry on a fresh snapshot."""


class SessionClosed(ReproError):
    """A statement was issued on a :class:`~repro.db.Session` (or a
    network connection) after ``close()``."""


class NetworkError(ReproError):
    """Base class for errors raised by the network service layer
    (:mod:`repro.net`).  The workload driver uses this class to
    distinguish connection-level failures from transaction aborts."""


class ProtocolError(NetworkError):
    """The byte stream violated the wire protocol: unknown frame type,
    oversized frame, truncated payload, or trailing garbage."""


class ConnectionClosedError(NetworkError):
    """The peer disconnected (or the connection was killed) while a
    request was outstanding or before one could be sent."""


class ServerBusyError(NetworkError):
    """The server refused the connection: admission control is at
    ``max_connections`` (SQLSTATE 53300)."""


class ServerShutdownError(NetworkError):
    """The server is shutting down and terminated this connection
    (SQLSTATE 57P01)."""


class StatementTimeoutError(NetworkError):
    """The server killed the connection because a statement exceeded
    the configured statement timeout (SQLSTATE 57014)."""


class IdleTimeoutError(NetworkError):
    """The server closed the connection after it sat idle longer than
    the configured idle timeout (SQLSTATE 57P05)."""


class MigrationError(ReproError):
    """Base class for errors in the BullFrog migration subsystem."""


class UnsupportedMigrationError(MigrationError):
    """The migration DDL uses a shape the classifier cannot handle."""


class MigrationStateError(MigrationError):
    """The migration subsystem was used in an invalid order (e.g. two
    concurrent migrations on the same table, or completing twice)."""
