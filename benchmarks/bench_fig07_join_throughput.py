"""Figure 7: throughput during the join migration (hashmap n:n)."""

from repro.bench.experiments import fig7_join_throughput


def test_fig7_join(benchmark, profile, record_figure):
    result = benchmark.pedantic(
        fig7_join_throughput,
        kwargs={
            "profile": profile,
            "systems": ("eager", "multistep", "bullfrog-tracker"),
            "rates": ("low",),
        },
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert "eager@low" in result.lines
